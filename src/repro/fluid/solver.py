"""Fluid ODE integration over a :class:`~repro.fluid.model.FluidModel`.

One Euler step advances, in this order:

1. **links** — queueing delay ``q/C`` and the logistic marking/loss
   probability of every link (:func:`threshold_marking_probability`);
2. **subflows** — RTT (base + path queueing delay), path marking
   probability ``1 - prod(1 - p_l)``, fluid rate ``x = w/T``;
3. **flows** — the per-flow aggregates the coupled laws need (XMP's
   ``y_s``/``T_s``, LIA's alpha and total window);
4. **windows** — the scheme's drift (:mod:`repro.fluid.laws`), clamped
   at :data:`~repro.fluid.laws.MIN_WINDOW`;
5. **queues** — ``q += dt * (arrivals - C)``, floored at zero,
   with arrivals taken from the pre-update rates (as in
   :func:`repro.core.fluid.integrate_shared_link`).

Two interchangeable solvers implement these semantics:

* ``"reference"`` — pure Python, the executable specification; and
* ``"vector"`` — numpy segment reductions over flattened path arrays,
  for the 10^4-10^6-subflow scenarios the reference loop cannot reach.
  Requires numpy (an optional test/bench dependency — the choice is
  explicit in the spec, never auto-detected, so a spec's fingerprint
  always names the float-summation order that produced its result).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.bos import DEFAULT_BETA
from repro.core.fluid import (
    SAMPLE_STRIDE,
    step_count,
    tail_mean,
    threshold_marking_probability,
)
from repro.fluid import laws
from repro.fluid.model import FluidModel
from repro.sim.units import Seconds

SOLVERS = ("reference", "vector")


def vector_available() -> bool:
    """Whether the numpy-backed ``"vector"`` solver can run here."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


@dataclass
class FluidTrajectory:
    """Sampled state series from one integration.

    ``windows``/``rates`` are per-subflow series (packets, packets/s),
    ``queues`` per-link series (packets); all sampled every
    ``sample_stride`` steps plus the final step unconditionally.
    """

    times: List[float] = field(default_factory=list)
    windows: List[List[float]] = field(default_factory=list)
    rates: List[List[float]] = field(default_factory=list)
    queues: List[List[float]] = field(default_factory=list)
    link_names: Tuple[str, ...] = ()
    steps: int = 0
    dt: float = 0.0
    #: Total state updates performed: steps * (subflows + links) — the
    #: fluid backend's events-processed equivalent.
    state_updates: int = 0

    def steady_state_windows(self, tail_fraction: float = 0.3) -> List[float]:
        """Per-subflow tail-mean window, packets."""
        return [tail_mean(series, tail_fraction) for series in self.windows]

    def steady_state_rates(self, tail_fraction: float = 0.3) -> List[float]:
        """Per-subflow tail-mean fluid rate, packets/s."""
        return [tail_mean(series, tail_fraction) for series in self.rates]

    def steady_state_queues(self, tail_fraction: float = 0.3) -> List[float]:
        """Per-link tail-mean queue, packets (parallel to link_names)."""
        return [tail_mean(series, tail_fraction) for series in self.queues]


def integrate_model(
    model: FluidModel,
    scheme: str,
    duration: Seconds,
    dt: Seconds = 2e-5,
    beta: float = DEFAULT_BETA,
    w0: float = 2.0,
    sample_stride: int = SAMPLE_STRIDE,
    solver: str = "reference",
) -> FluidTrajectory:
    """Euler-integrate ``model`` under ``scheme`` for ``duration``."""
    if scheme not in laws.FLUID_SCHEMES:
        raise ValueError(
            f"unknown fluid scheme {scheme!r} (one of {laws.FLUID_SCHEMES})"
        )
    if solver not in SOLVERS:
        raise ValueError(f"unknown solver {solver!r} (one of {SOLVERS})")
    if sample_stride < 1:
        raise ValueError(f"sample_stride must be >= 1, got {sample_stride}")
    if not model.subflows:
        raise ValueError("model has no subflows")
    steps = step_count(duration, dt)
    if solver == "vector":
        return _integrate_vector(model, scheme, steps, dt, beta, w0, sample_stride)
    return _integrate_reference(model, scheme, steps, dt, beta, w0, sample_stride)


def _new_trajectory(
    model: FluidModel, steps: int, dt: float
) -> FluidTrajectory:
    num_subflows = len(model.subflows)
    num_links = len(model.links)
    return FluidTrajectory(
        windows=[[] for _ in range(num_subflows)],
        rates=[[] for _ in range(num_subflows)],
        queues=[[] for _ in range(num_links)],
        link_names=tuple(link.name for link in model.links),
        steps=steps,
        dt=dt,
        state_updates=steps * (num_subflows + num_links),
    )


def _integrate_reference(
    model: FluidModel,
    scheme: str,
    steps: int,
    dt: float,
    beta: float,
    w0: float,
    sample_stride: int,
) -> FluidTrajectory:
    """The pure-Python executable specification of one Euler step."""
    use_ecn = laws.scheme_uses_ecn(scheme)
    num_links = len(model.links)
    num_subflows = len(model.subflows)
    caps = [link.capacity_pps for link in model.links]
    knees = [
        link.ecn_threshold if use_ecn else link.drop_threshold
        for link in model.links
    ]
    paths = [subflow.links for subflow in model.subflows]
    base = [subflow.base_rtt for subflow in model.subflows]
    slices = model.flow_slices()

    w = [float(w0)] * num_subflows
    q = [0.0] * num_links
    alpha = [1.0] * num_subflows if scheme == "dctcp" else None

    out = _new_trajectory(model, steps, dt)
    for i in range(steps):
        delay = [q[l] / caps[l] for l in range(num_links)]
        p_link = [
            threshold_marking_probability(q[l], knees[l], laws.MARKING_WIDTH)
            for l in range(num_links)
        ]
        rtts = [0.0] * num_subflows
        probs = [0.0] * num_subflows
        rates = [0.0] * num_subflows
        arrivals = [0.0] * num_links
        for s in range(num_subflows):
            rtt = base[s]
            survive = 1.0
            for l in paths[s]:
                rtt += delay[l]
                survive *= 1.0 - p_link[l]
            x = w[s] / rtt
            rtts[s] = rtt
            probs[s] = 1.0 - survive
            rates[s] = x
            for l in paths[s]:
                arrivals[l] += x

        if scheme == "xmp":
            for start, end in slices:
                y = sum(rates[start:end])
                t_min = min(rtts[start:end])
                for s in range(start, end):
                    w[s] += dt * laws.xmp_window_drift(
                        w[s], probs[s], rtts[s], y, t_min, beta
                    )
        elif scheme == "bos-uncoupled":
            for s in range(num_subflows):
                w[s] += dt * laws.bos_window_drift(w[s], probs[s], rtts[s], beta)
        elif scheme == "lia":
            for start, end in slices:
                flow_alpha = laws.lia_alpha(w[start:end], rtts[start:end])
                total = sum(w[start:end])
                for s in range(start, end):
                    w[s] += dt * laws.lia_window_drift(
                        w[s], probs[s], rtts[s], flow_alpha, total
                    )
        else:  # dctcp
            assert alpha is not None
            for s in range(num_subflows):
                w[s] += dt * laws.dctcp_window_drift(
                    w[s], probs[s], rtts[s], alpha[s]
                )
                alpha[s] += dt * laws.dctcp_alpha_drift(
                    alpha[s], probs[s], rtts[s]
                )
        for s in range(num_subflows):
            if w[s] < laws.MIN_WINDOW:
                w[s] = laws.MIN_WINDOW

        for l in range(num_links):
            q[l] = max(0.0, q[l] + dt * (arrivals[l] - caps[l]))

        if i % sample_stride == 0 or i == steps - 1:
            out.times.append(i * dt)
            for s in range(num_subflows):
                out.windows[s].append(w[s])
                out.rates[s].append(rates[s])
            for l in range(num_links):
                out.queues[l].append(q[l])
    return out


def _integrate_vector(
    model: FluidModel,
    scheme: str,
    steps: int,
    dt: float,
    beta: float,
    w0: float,
    sample_stride: int,
) -> FluidTrajectory:
    """numpy mirror of :func:`_integrate_reference` (same semantics).

    Paths are flattened into one link-index array with per-subflow
    segment offsets; per-subflow sums/products and per-flow reductions
    are ``ufunc.reduceat`` calls, and arrivals scatter back with
    ``bincount``.  Float summation *order* differs from the reference
    loop, so trajectories agree only to integration tolerance — which
    is why the spec names the solver explicitly.
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - exercised only without numpy
        raise RuntimeError(
            "the 'vector' fluid solver requires numpy; use solver='reference'"
        ) from None

    use_ecn = laws.scheme_uses_ecn(scheme)
    num_links = len(model.links)
    num_subflows = len(model.subflows)
    caps = np.array([link.capacity_pps for link in model.links])
    knees = np.array(
        [
            link.ecn_threshold if use_ecn else link.drop_threshold
            for link in model.links
        ]
    )
    base = np.array([subflow.base_rtt for subflow in model.subflows])
    path_links = np.concatenate(
        [np.asarray(subflow.links, dtype=np.int64) for subflow in model.subflows]
    )
    path_lens = np.array(
        [len(subflow.links) for subflow in model.subflows], dtype=np.int64
    )
    sub_offsets = np.concatenate(([0], np.cumsum(path_lens)[:-1]))
    path_sub = np.repeat(np.arange(num_subflows, dtype=np.int64), path_lens)
    slices = model.flow_slices()
    flow_offsets = np.array([start for start, _ in slices], dtype=np.int64)
    flow_of = np.array([subflow.flow for subflow in model.subflows], dtype=np.int64)

    w = np.full(num_subflows, float(w0))
    q = np.zeros(num_links)
    alpha = np.ones(num_subflows) if scheme == "dctcp" else None

    out = _new_trajectory(model, steps, dt)
    for i in range(steps):
        delay = q / caps
        p_link = 1.0 / (1.0 + np.exp(-(q - knees) / laws.MARKING_WIDTH))
        rtt = base + np.add.reduceat(delay[path_links], sub_offsets)
        survive = np.multiply.reduceat(1.0 - p_link[path_links], sub_offsets)
        p = 1.0 - survive
        x = w / rtt

        if scheme == "xmp":
            y = np.add.reduceat(x, flow_offsets)[flow_of]
            t_min = np.minimum.reduceat(rtt, flow_offsets)[flow_of]
            delta = w / (y * t_min)
            dw = (delta * (1.0 - p) - w * p / beta) / rtt
        elif scheme == "bos-uncoupled":
            dw = ((1.0 - p) - w * p / beta) / rtt
        elif scheme == "lia":
            numerator = np.maximum.reduceat(w / (rtt * rtt), flow_offsets)
            denominator = np.add.reduceat(w / rtt, flow_offsets)
            total = np.add.reduceat(w, flow_offsets)
            flow_alpha = total * numerator / (denominator * denominator)
            own = 1.0 / np.maximum(w, 1.0)
            increase = np.minimum(flow_alpha[flow_of] / total[flow_of], own)
            dw = x * ((1.0 - p) * increase - p * (w / 2.0))
        else:  # dctcp
            assert alpha is not None
            dw = ((1.0 - p) - (w * alpha / 2.0) * p) / rtt
            alpha = alpha + dt * laws.DEFAULT_GAIN * (p - alpha) / rtt

        w = np.maximum(w + dt * dw, laws.MIN_WINDOW)
        arrivals = np.bincount(path_links, weights=x[path_sub], minlength=num_links)
        q = np.maximum(q + dt * (arrivals - caps), 0.0)

        if i % sample_stride == 0 or i == steps - 1:
            out.times.append(i * dt)
            w_list = w.tolist()
            x_list = x.tolist()
            q_list = q.tolist()
            for s in range(num_subflows):
                out.windows[s].append(w_list[s])
                out.rates[s].append(x_list[s])
            for l in range(num_links):
                out.queues[l].append(q_list[l])
    return out


__all__ = [
    "SOLVERS",
    "FluidTrajectory",
    "integrate_model",
    "vector_available",
]
