"""The Permutation pattern (paper §5.2.1).

Every host transfers to one other host chosen at random such that each
host is the destination of exactly one flow (a fixed-point-free random
permutation); when *all* flows of a round finish, a new permutation
starts.  Flow sizes are uniform in a configurable range (the paper's
64-512 MB, scaled down by default — see DESIGN.md §4).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.traffic.factory import TransferFactory


def random_derangement(items: Sequence[str], rng: random.Random) -> List[str]:
    """A uniform-ish random permutation with no fixed points.

    Retry-shuffle until no element maps to itself; for n >= 2 the success
    probability per attempt is ~1/e, so this terminates quickly.
    """
    if len(items) < 2:
        raise ValueError("need at least two items for a derangement")
    targets = list(items)
    while True:
        rng.shuffle(targets)
        if all(a != b for a, b in zip(items, targets)):
            return targets


class PermutationPattern:
    """Drive rounds of host permutations until stopped."""

    def __init__(
        self,
        factory: TransferFactory,
        hosts: Sequence[str],
        size_min_bytes: int = 2_000_000,
        size_max_bytes: int = 16_000_000,
        rng: Optional[random.Random] = None,
        max_rounds: Optional[int] = None,
    ) -> None:
        if size_min_bytes <= 0 or size_max_bytes < size_min_bytes:
            raise ValueError("invalid size range")
        self.factory = factory
        self.hosts = list(hosts)
        self.size_min = size_min_bytes
        self.size_max = size_max_bytes
        self.rng = rng if rng is not None else random.Random(0)
        self.max_rounds = max_rounds
        self.rounds_started = 0
        self.flows_started = 0
        self._outstanding = 0
        self._stopped = False

    def start(self) -> None:
        """Launch the first round."""
        self._start_round()

    def stop(self) -> None:
        """No further rounds will start (running flows continue)."""
        self._stopped = True

    def _start_round(self) -> None:
        if self._stopped:
            return
        if self.max_rounds is not None and self.rounds_started >= self.max_rounds:
            return
        self.rounds_started += 1
        targets = random_derangement(self.hosts, self.rng)
        self._outstanding = len(self.hosts)
        for src, dst in zip(self.hosts, targets):
            size = self.rng.randint(self.size_min, self.size_max)
            self.flows_started += 1
            self.factory.launch(src, dst, size, on_complete=self._flow_done)

    def _flow_done(self, record) -> None:
        self._outstanding -= 1
        if self._outstanding == 0:
            self._start_round()


__all__ = ["PermutationPattern", "random_derangement"]
