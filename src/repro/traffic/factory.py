"""Transfer factory: scheme-configured transfers with records and sampling.

Every workload pattern funnels flow creation through one
:class:`TransferFactory`, which

* picks subflow paths — hash-ECMP for single-path schemes, distinct
  equal-cost paths for multipath ones (the paper's setup);
* builds the :class:`~repro.mptcp.MptcpConnection` with the scheme's
  coupling, beta and RTOmin;
* tags the flow with its category (inner-rack / inter-rack / inter-pod on
  a fat tree) and appends a finished
  :class:`~repro.metrics.goodput.FlowRecord` to the shared list;
* optionally registers each subflow sender with an
  :class:`~repro.metrics.collector.RttSampler` under that category.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.metrics.collector import RttSampler
from repro.metrics.goodput import FlowRecord
from repro.mptcp.connection import MptcpConnection
from repro.net.network import Network
from repro.net.routing import DistinctPathSelector, EcmpSelector
from repro.topology.fattree import FatTreeNetwork


class TransferFactory:
    """Create transfers of one scheme and account for them."""

    def __init__(
        self,
        network: Network,
        scheme: str,
        subflow_count: int = 1,
        beta: float = 4.0,
        rto_min: float = 0.200,
        initial_cwnd: float = 10,
        rng: Optional[random.Random] = None,
        rtt_sampler: Optional[RttSampler] = None,
        label: Optional[str] = None,
        on_launch: Optional[Callable[[MptcpConnection], None]] = None,
    ) -> None:
        if subflow_count < 1:
            raise ValueError(f"subflow_count must be >= 1, got {subflow_count}")
        self.network = network
        self.scheme = scheme
        self.subflow_count = subflow_count
        self.beta = beta
        self.rto_min = rto_min
        self.initial_cwnd = initial_cwnd
        self.rng = rng if rng is not None else random.Random(0)
        self.rtt_sampler = rtt_sampler
        #: Flow-lifecycle hook: called with each connection as it starts
        #: (completion already flows through per-launch ``on_complete``
        #: callbacks and ``self.records``).  Workload patterns use the
        #: pair as the start/completion event seam for FCT accounting.
        self.on_launch = on_launch
        #: Name used in reports: e.g. "XMP-2", "LIA-4", "DCTCP".
        self.label = label if label is not None else self._default_label()
        self.records: List[FlowRecord] = []
        self.active: List[MptcpConnection] = []
        self._ecmp = EcmpSelector(self.rng)
        self._distinct = DistinctPathSelector(self.rng)

    def _default_label(self) -> str:
        base = self.scheme.upper()
        if self.subflow_count > 1:
            return f"{base}-{self.subflow_count}"
        return base

    def category(self, src: str, dst: str) -> str:
        """Flow category; 'any' when the topology has no notion of racks."""
        if isinstance(self.network, FatTreeNetwork):
            return self.network.category(src, dst)
        return "any"

    # ------------------------------------------------------------------

    def launch(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        on_complete: Optional[Callable[[FlowRecord], None]] = None,
        subflow_count: Optional[int] = None,
    ) -> MptcpConnection:
        """Create and start a transfer now."""
        count = subflow_count if subflow_count is not None else self.subflow_count
        paths = self.network.paths(src, dst)
        if not paths:
            raise ValueError(f"no path between {src} and {dst}")
        selector = self._distinct if count > 1 else self._ecmp
        chosen = selector.select(paths, 0, count)
        category = self.category(src, dst)

        def finished(connection: MptcpConnection, now: float) -> None:
            record = FlowRecord(
                flow_id=connection.flow_id,
                scheme=self.label,
                src=src,
                dst=dst,
                category=category,
                size_bytes=size_bytes,
                start_time=(
                    connection.start_time if connection.start_time is not None else 0.0
                ),
                complete_time=now,
                delivered_bytes=connection.delivered_bytes,
            )
            self.records.append(record)
            if connection in self.active:
                self.active.remove(connection)
            if on_complete is not None:
                on_complete(record)

        connection = MptcpConnection(
            self.network,
            src,
            dst,
            chosen,
            scheme=self.scheme,
            size_bytes=size_bytes,
            beta=self.beta,
            rto_min=self.rto_min,
            initial_cwnd=self.initial_cwnd,
            on_complete=finished,
        )
        if self.rtt_sampler is not None:
            for subflow in connection.subflows:
                self.rtt_sampler.watch(category, subflow.sender)
        self.active.append(connection)
        connection.start()
        if self.on_launch is not None:
            self.on_launch(connection)
        return connection

    # ------------------------------------------------------------------

    def unfinished_records(self, now: float) -> List[FlowRecord]:
        """Records for still-running transfers, measured up to ``now``.

        The paper's goodput averages are over completed flows; including
        the unfinished tail (at its current average rate) is useful for
        short scaled-down runs and is reported separately.
        """
        records = []
        for connection in self.active:
            records.append(
                FlowRecord(
                    flow_id=connection.flow_id,
                    scheme=self.label,
                    src=connection.src,
                    dst=connection.dst,
                    category=self.category(connection.src, connection.dst),
                    size_bytes=connection.size_bytes or 0,
                    start_time=(
                        connection.start_time
                        if connection.start_time is not None
                        else now
                    ),
                    complete_time=None,
                    delivered_bytes=connection.delivered_bytes,
                )
            )
        return records

    def all_records(self, now: float) -> List[FlowRecord]:
        """Finished records plus the unfinished tail measured at ``now``."""
        return self.records + self.unfinished_records(now)


__all__ = ["TransferFactory"]
