"""The Incast pattern (paper §5.2.1): request/response fan-in jobs.

A *Job*: pick 9 random hosts — one client, eight servers.  The client
simultaneously sends a 2 KB request to each server; on receiving its
request, a server immediately answers with a 64 KB response.  The job
ends when the client has all eight responses; a new job starts right
away.  Eight jobs run concurrently; all small flows use plain TCP.
Background load is a :class:`~repro.traffic.random_pattern.RandomPattern`
of large flows (wired up by the experiment driver, not here).

Job completion time (JCT) is the paper's latency metric (Fig. 9,
Table 3); the fan-in of eight simultaneous responses into one access link
is what triggers the incast losses and 200 ms RTO "collapses" the paper's
CDF jumps come from.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from repro.traffic.factory import TransferFactory

#: Paper values — kept exact, they are what the latency results depend on.
REQUEST_BYTES = 2_000
RESPONSE_BYTES = 64_000
SERVERS_PER_JOB = 8
CONCURRENT_JOBS = 8


class IncastJob:
    """One request/response round between a client and its servers."""

    def __init__(
        self,
        pattern: "IncastPattern",
        client: str,
        servers: Sequence[str],
        start_time: float,
    ) -> None:
        self.pattern = pattern
        self.client = client
        self.servers = list(servers)
        self.start_time = start_time
        self.complete_time: Optional[float] = None
        self._responses_pending = len(self.servers)

    def launch(self) -> None:
        """Send all requests simultaneously."""
        for server in self.servers:
            self.pattern.factory.launch(
                self.client,
                server,
                REQUEST_BYTES,
                on_complete=self._request_done(server),
            )

    def _request_done(self, server: str) -> Callable:
        def callback(record) -> None:
            # The server received the request; respond immediately.
            self.pattern.factory.launch(
                server,
                self.client,
                RESPONSE_BYTES,
                on_complete=self._response_done,
            )

        return callback

    def _response_done(self, record) -> None:
        self._responses_pending -= 1
        if self._responses_pending == 0:
            self.complete_time = self.pattern.network.sim.now
            self.pattern._job_finished(self)

    def completion_time(self) -> Optional[float]:
        """JCT in seconds, if finished."""
        if self.complete_time is None:
            return None
        return self.complete_time - self.start_time


class IncastPattern:
    """Keep ``concurrent_jobs`` jobs running, recording every JCT."""

    def __init__(
        self,
        factory: TransferFactory,
        hosts: Sequence[str],
        servers_per_job: int = SERVERS_PER_JOB,
        concurrent_jobs: int = CONCURRENT_JOBS,
        rng: Optional[random.Random] = None,
    ) -> None:
        if len(hosts) < servers_per_job + 1:
            raise ValueError(
                f"need at least {servers_per_job + 1} hosts, got {len(hosts)}"
            )
        self.factory = factory
        self.network = factory.network
        self.hosts = list(hosts)
        self.servers_per_job = servers_per_job
        self.concurrent_jobs = concurrent_jobs
        self.rng = rng if rng is not None else random.Random(0)
        self.completed_jobs: List[IncastJob] = []
        self.active_jobs: List[IncastJob] = []
        self.jobs_started = 0
        self._stopped = False

    def start(self) -> None:
        """Launch the initial batch of concurrent jobs."""
        for _ in range(self.concurrent_jobs):
            self._start_job()

    def stop(self) -> None:
        """Finish running jobs but start no new ones."""
        self._stopped = True

    def completion_times(self) -> List[float]:
        """All recorded JCTs, seconds."""
        times = []
        for job in self.completed_jobs:
            jct = job.completion_time()
            if jct is not None:
                times.append(jct)
        return times

    # ------------------------------------------------------------------

    def _start_job(self) -> None:
        if self._stopped:
            return
        chosen = self.rng.sample(self.hosts, self.servers_per_job + 1)
        client, servers = chosen[0], chosen[1:]
        self.jobs_started += 1
        job = IncastJob(self, client, servers, self.network.sim.now)
        self.active_jobs.append(job)
        job.launch()

    def _job_finished(self, job: IncastJob) -> None:
        self.active_jobs.remove(job)
        self.completed_jobs.append(job)
        self._start_job()

    def unfinished_ages(self, now: float) -> List[float]:
        """How long each still-running job has been going (for deadline
        accounting at the end of a finite simulation)."""
        return [now - job.start_time for job in self.active_jobs]


__all__ = [
    "IncastPattern",
    "IncastJob",
    "REQUEST_BYTES",
    "RESPONSE_BYTES",
    "SERVERS_PER_JOB",
    "CONCURRENT_JOBS",
]
