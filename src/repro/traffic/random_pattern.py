"""The Random pattern (paper §5.2.1).

Every host transfers to a random destination, subject to each host being
the destination of at most ``max_in_degree`` (4) flows; a source that
finishes immediately picks a new destination and starts again.  Flow
sizes follow a bounded Pareto distribution (shape 1.5; the paper's mean
192 MB / bound 768 MB, scaled down by default).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Sequence

from repro.sim.priorities import MODEL
from repro.sim.random import pareto_bounded
from repro.traffic.factory import TransferFactory


class RandomPattern:
    """Back-to-back random transfers per source host."""

    def __init__(
        self,
        factory: TransferFactory,
        hosts: Sequence[str],
        shape: float = 1.5,
        mean_bytes: float = 6_000_000,
        max_bytes: float = 24_000_000,
        max_in_degree: int = 4,
        rng: Optional[random.Random] = None,
        exclude_same_rack: bool = False,
        dst_filter: Optional[Callable[[str, str], bool]] = None,
        destinations: Optional[Sequence[str]] = None,
    ) -> None:
        self.factory = factory
        self.hosts = list(hosts)
        self.shape = shape
        self.mean_bytes = mean_bytes
        self.max_bytes = max_bytes
        self.max_in_degree = max_in_degree
        self.rng = rng if rng is not None else random.Random(0)
        self.exclude_same_rack = exclude_same_rack
        self.dst_filter = dst_filter
        #: Candidate destinations; defaults to the sources themselves.  The
        #: coexistence experiments split *sources* between schemes but let
        #: either half target any host, as the paper's "half of flows" does.
        self.destinations = list(destinations) if destinations else list(hosts)
        self.in_degree: Dict[str, int] = {host: 0 for host in self.destinations}
        self.flows_started = 0
        self._stopped = False

    def start(self) -> None:
        """Issue the first flow from every host."""
        for host in self.hosts:
            self._issue(host)

    def stop(self) -> None:
        """No replacement flows after the running ones finish."""
        self._stopped = True

    # ------------------------------------------------------------------

    def _acceptable(self, src: str, dst: str) -> bool:
        if dst == src:
            return False
        if self.in_degree[dst] >= self.max_in_degree:
            return False
        if self.exclude_same_rack:
            network = self.factory.network
            same_rack = getattr(network, "same_rack", None)
            if same_rack is not None and same_rack(src, dst):
                return False
        if self.dst_filter is not None and not self.dst_filter(src, dst):
            return False
        return True

    def _pick_destination(self, src: str) -> Optional[str]:
        candidates = [dst for dst in self.destinations if self._acceptable(src, dst)]
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def _issue(self, src: str) -> None:
        if self._stopped:
            return
        dst = self._pick_destination(src)
        if dst is None:
            # Everyone saturated; retry shortly rather than deadlocking.
            self.factory.network.sim.schedule(
                0.001, self._issue, src, priority=MODEL
            )
            return
        size = int(pareto_bounded(self.rng, self.shape, self.mean_bytes, self.max_bytes))
        size = max(size, 1)
        self.in_degree[dst] += 1
        self.flows_started += 1

        def done(record, _src=src, _dst=dst) -> None:
            self.in_degree[_dst] -= 1
            self._issue(_src)

        self.factory.launch(src, dst, size, on_complete=done)


__all__ = ["RandomPattern"]
