"""Workload generation: the paper's §5.2.1 traffic patterns.

* :class:`~repro.traffic.factory.TransferFactory` — turns (src, dst, size)
  into a running transfer with the configured scheme/subflow count and
  path policy, recording a :class:`~repro.metrics.goodput.FlowRecord` on
  completion.
* :class:`~repro.traffic.permutation.PermutationPattern` — host-to-host
  permutations, restarted when a round finishes.
* :class:`~repro.traffic.random_pattern.RandomPattern` — random pairs with
  bounded in-degree and Pareto sizes, back-to-back per source.
* :class:`~repro.traffic.incast.IncastPattern` — request/response fan-in
  jobs over TCP small flows, with Random-pattern background large flows.
"""

from repro.traffic.factory import TransferFactory
from repro.traffic.permutation import PermutationPattern
from repro.traffic.random_pattern import RandomPattern
from repro.traffic.incast import IncastJob, IncastPattern

__all__ = [
    "TransferFactory",
    "PermutationPattern",
    "RandomPattern",
    "IncastPattern",
    "IncastJob",
]
