"""Periodic samplers driven by simulator events.

Each sampler schedules itself every ``interval`` seconds and appends to
plain Python lists, so post-processing is ordinary list work.  Samplers
stop sampling automatically when the simulator's event heap drains (their
own events keep the heap alive only until ``until`` if given).

Sampling ticks run at :data:`SAMPLE_PRIORITY`, *after* every transport
and network event scheduled for the same instant: a sampler must observe
the settled end-of-instant state, never the middle of an ACK burst that
happens to share its timestamp (samples would otherwise race transport
events on the insertion-order tiebreak and could read mid-update
counters).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.link import Link
from repro.net.packet import MSS_BYTES
from repro.sim.engine import Simulator
from repro.sim.priorities import SAMPLE
from repro.transport.tcp import TcpSender

#: Event priority for sampling ticks — the ``SAMPLE`` tier of
#: :mod:`repro.sim.priorities` (kept under its historical name here for
#: the many call sites that import it from the collector).
SAMPLE_PRIORITY = SAMPLE


class PeriodicSampler:
    """Base: call :meth:`sample` every ``interval`` until ``until``."""

    def __init__(
        self, sim: Simulator, interval: float, until: Optional[float] = None
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        self.until = until
        self._stopped = False

    def start(self, delay: float = 0.0) -> None:
        """Begin sampling ``delay`` seconds from now."""
        self.sim.schedule(delay, self._tick, priority=SAMPLE_PRIORITY)

    def stop(self) -> None:
        """Stop after the current tick.

        The already-scheduled tick still fires and takes its sample (so a
        window closed by ``stop()`` keeps its final data point); it just
        doesn't reschedule.
        """
        self._stopped = True

    def _tick(self) -> None:
        if self.until is not None and self.sim.now > self.until:
            return
        self.sample()
        if self._stopped:
            return
        self.sim.schedule(self.interval, self._tick, priority=SAMPLE_PRIORITY)

    def sample(self) -> None:
        raise NotImplementedError


class RateSampler(PeriodicSampler):
    """Per-sender delivery rate over each interval, bits/second.

    This is how the paper's rate-versus-time plots (Figs. 1, 4, 6, 7) are
    produced: the rate in an interval is the growth of cumulatively
    acknowledged payload divided by the interval.
    """

    def __init__(
        self,
        sim: Simulator,
        senders: Dict[str, TcpSender],
        interval: float,
        until: Optional[float] = None,
    ) -> None:
        super().__init__(sim, interval, until)
        self.senders = dict(senders)
        self.times: List[float] = []
        self.rates: Dict[str, List[float]] = {name: [] for name in self.senders}
        self._last_delivered: Dict[str, int] = {
            name: sender.delivered_segments for name, sender in self.senders.items()
        }

    def add_sender(self, name: str, sender: TcpSender) -> None:
        """Track one more sender; earlier intervals are padded with 0."""
        if name in self.senders:
            raise ValueError(f"duplicate sender name {name}")
        self.senders[name] = sender
        self.rates[name] = [0.0] * len(self.times)
        self._last_delivered[name] = sender.delivered_segments

    def sample(self) -> None:
        self.times.append(self.sim.now)
        for name, sender in self.senders.items():
            delivered = sender.delivered_segments
            delta = delivered - self._last_delivered[name]
            self._last_delivered[name] = delivered
            self.rates[name].append(delta * MSS_BYTES * 8.0 / self.interval)

    def series(self, name: str) -> List[Tuple[float, float]]:
        """The (time, rate) series for one sender."""
        return list(zip(self.times, self.rates[name]))

    def mean_rate(self, name: str, start: float = 0.0, end: float = float("inf")) -> float:
        """Average rate of a sender over a time window."""
        values = [
            rate
            for time, rate in zip(self.times, self.rates[name])
            if start <= time <= end
        ]
        if not values:
            return 0.0
        return sum(values) / len(values)


class QueueMonitor(PeriodicSampler):
    """Occupancy of a set of link queues over time (buffer-occupancy plots)."""

    def __init__(
        self,
        sim: Simulator,
        links: Sequence[Link],
        interval: float,
        until: Optional[float] = None,
    ) -> None:
        super().__init__(sim, interval, until)
        self.links = list(links)
        self.times: List[float] = []
        self.occupancy: Dict[str, List[int]] = {link.name: [] for link in self.links}

    def sample(self) -> None:
        self.times.append(self.sim.now)
        for link in self.links:
            self.occupancy[link.name].append(link.occupancy)

    def mean_occupancy(self, link_name: str) -> float:
        """Time-average occupancy of one link's queue."""
        samples = self.occupancy[link_name]
        if not samples:
            return 0.0
        return sum(samples) / len(samples)

    def max_occupancy(self, link_name: str) -> int:
        """Largest sampled occupancy of one link's queue."""
        samples = self.occupancy[link_name]
        return max(samples) if samples else 0


class RttSampler(PeriodicSampler):
    """Collect smoothed-RTT samples from live senders, tagged by group.

    Fig. 10 reports RTT distributions per flow category; the experiment
    registers each large-flow subflow under its category and this sampler
    harvests ``srtt`` periodically while the sender runs.
    """

    def __init__(
        self, sim: Simulator, interval: float, until: Optional[float] = None
    ) -> None:
        super().__init__(sim, interval, until)
        self._senders: List[Tuple[str, TcpSender]] = []
        self.samples: Dict[str, List[float]] = {}

    def watch(self, group: str, sender: TcpSender) -> None:
        """Start harvesting this sender's srtt under ``group``."""
        self._senders.append((group, sender))
        self.samples.setdefault(group, [])

    def sample(self) -> None:
        for group, sender in self._senders:
            if sender.running and not sender.completed:
                srtt = sender.srtt
                if srtt is not None:
                    self.samples[group].append(srtt)


__all__ = [
    "SAMPLE_PRIORITY",
    "PeriodicSampler",
    "RateSampler",
    "QueueMonitor",
    "RttSampler",
]
