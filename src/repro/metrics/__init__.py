"""Measurement: the quantities the paper's evaluation section reports.

* :mod:`repro.metrics.stats` — percentiles, CDFs, summary statistics.
* :mod:`repro.metrics.fairness` — Jain's fairness index.
* :mod:`repro.metrics.collector` — periodic samplers (per-flow rates,
  queue occupancy, RTTs) driven by simulator events.
* :mod:`repro.metrics.goodput` — flow records and goodput aggregation
  (Table 1/2, Fig. 8).
* :mod:`repro.metrics.utilization` — per-layer link utilization (Fig. 11).
* :mod:`repro.metrics.fct` — FCT-by-size-bin, 99p queue depth and
  incast goodput-collapse reducers for the workload matrix.
"""

from repro.metrics.stats import cdf_points, mean, percentile, summarize
from repro.metrics.fairness import jain_index
from repro.metrics.collector import QueueMonitor, RateSampler, RttSampler
from repro.metrics.trace import FlowTracer, rate_series_to_csv
from repro.metrics.goodput import FlowRecord, goodput_table
from repro.metrics.utilization import utilization_by_layer
from repro.metrics.fct import (
    check_fct_invariants,
    fct_by_size_bin,
    fct_summary,
    goodput_collapse_ratio,
    queue_depth_p99,
)

__all__ = [
    "check_fct_invariants",
    "fct_by_size_bin",
    "fct_summary",
    "goodput_collapse_ratio",
    "queue_depth_p99",
    "cdf_points",
    "mean",
    "percentile",
    "summarize",
    "jain_index",
    "QueueMonitor",
    "RateSampler",
    "RttSampler",
    "FlowTracer",
    "rate_series_to_csv",
    "FlowRecord",
    "goodput_table",
    "utilization_by_layer",
]
