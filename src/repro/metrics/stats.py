"""Summary statistics used by every experiment report.

Implemented without numpy so the core library stays dependency-free; the
benchmark harness may still use numpy for plotting-oriented work.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100].

    Matches numpy's default ("linear") method so results are comparable
    with common plotting pipelines.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    # The `lo + (hi - lo) * f` form is exact when lo == hi; the naive
    # `lo*(1-f) + hi*f` can round just below lo there.
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, fraction <= value) points, sorted."""
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """The five-number summary the paper's bar charts annotate.

    Fig. 8(c)/(d) and Fig. 10/11 mark the min, 10th/50th/90th percentile
    and max of each distribution; this returns exactly those.
    """
    if not values:
        return {"min": 0.0, "p10": 0.0, "p50": 0.0, "p90": 0.0, "max": 0.0, "mean": 0.0}
    return {
        "min": min(values),
        "p10": percentile(values, 10),
        "p50": percentile(values, 50),
        "p90": percentile(values, 90),
        "max": max(values),
        "mean": mean(values),
    }


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two values."""
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / len(values))


__all__ = ["mean", "percentile", "cdf_points", "summarize", "stddev"]
