"""Summary statistics used by every experiment report.

Implemented without numpy so the core library stays dependency-free; the
benchmark harness may still use numpy for plotting-oriented work.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


#: The locked percentile interpolation.  Every number this repo reports
#: (EXPERIMENTS.md tables, golden digests, workload FCT/queue-depth
#: percentiles) uses this method; changing it is a reportable behaviour
#: change, not a refactor.
PERCENTILE_METHOD = "linear"


def percentile(values: Sequence[float], q: float, method: str = PERCENTILE_METHOD) -> float:
    """Percentile of ``values``, ``q`` in [0, 100].

    The default (and locked — see :data:`PERCENTILE_METHOD`) method is
    **linear**: rank ``(n - 1) * q / 100`` with linear interpolation
    between the two bracketing order statistics.  It matches numpy's
    default ("linear" / Hyndman-Fan type 7), so results are comparable
    with common plotting pipelines, and it is exact on ties (a run of
    equal values brackets to itself).

    ``method="nearest-rank"`` is available for cross-checks against
    textbook definitions (ceil(n * q / 100)-th order statistic, the
    Hyndman-Fan type 1 / classic "p99 is an observed sample" rule); it
    is deliberately *not* the default — reported numbers must all come
    from one method, locked by ``test_metrics.py::TestPercentileLock``.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if method == "nearest-rank":
        if q == 0.0:
            return ordered[0]
        rank_index = math.ceil(len(ordered) * q / 100.0) - 1
        return ordered[min(rank_index, len(ordered) - 1)]
    if method != "linear":
        raise ValueError(
            f"unknown percentile method {method!r} (known: linear, nearest-rank)"
        )
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    # The `lo + (hi - lo) * f` form is exact when lo == hi; the naive
    # `lo*(1-f) + hi*f` can round just below lo there.
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, fraction <= value) points, sorted."""
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """The five-number summary the paper's bar charts annotate.

    Fig. 8(c)/(d) and Fig. 10/11 mark the min, 10th/50th/90th percentile
    and max of each distribution; this returns exactly those.
    """
    if not values:
        return {"min": 0.0, "p10": 0.0, "p50": 0.0, "p90": 0.0, "max": 0.0, "mean": 0.0}
    return {
        "min": min(values),
        "p10": percentile(values, 10),
        "p50": percentile(values, 50),
        "p90": percentile(values, 90),
        "max": max(values),
        "mean": mean(values),
    }


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two values."""
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / len(values))


__all__ = [
    "PERCENTILE_METHOD",
    "mean",
    "percentile",
    "cdf_points",
    "summarize",
    "stddev",
]
