"""Per-layer link utilization (Fig. 11).

The paper defines utilization of link *l* as ``transferred / capacity``
over the whole simulation; links are grouped by layer (core /
aggregation / rack) and the figure shows each group's distribution
("a shorter vertical line implies a more balanced link utilization").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.net.link import Link
from repro.metrics.stats import summarize


def link_utilizations(links: Iterable[Link], duration: float) -> List[float]:
    """Utilization of each link over ``duration`` seconds."""
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    return [link.utilization(duration) for link in links]


def utilization_by_layer(
    links: Sequence[Link],
    duration: float,
    layers: Sequence[str] = ("core", "aggregation", "rack"),
) -> Dict[str, Dict[str, float]]:
    """Five-number utilization summary per layer — one scheme's Fig. 11 bars."""
    result: Dict[str, Dict[str, float]] = {}
    for layer in layers:
        layer_links = [link for link in links if link.layer == layer]
        result[layer] = summarize(link_utilizations(layer_links, duration))
    return result


__all__ = ["link_utilizations", "utilization_by_layer"]
