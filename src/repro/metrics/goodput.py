"""Flow records and goodput aggregation (Tables 1-2, Fig. 8).

The paper defines Goodput as "the average data transfer rate of a large
flow over its whole running time"; a :class:`FlowRecord` captures one
finished (or still-running) transfer and the helpers aggregate them the
way the tables and CDFs do.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.metrics.stats import cdf_points, mean, summarize


class FlowRecord:
    """One transfer's outcome."""

    __slots__ = (
        "flow_id",
        "scheme",
        "src",
        "dst",
        "category",
        "size_bytes",
        "start_time",
        "complete_time",
        "delivered_bytes",
    )

    def __init__(
        self,
        flow_id: int,
        scheme: str,
        src: str,
        dst: str,
        category: str,
        size_bytes: int,
        start_time: float,
        complete_time: Optional[float],
        delivered_bytes: int,
    ) -> None:
        self.flow_id = flow_id
        self.scheme = scheme
        self.src = src
        self.dst = dst
        self.category = category
        self.size_bytes = size_bytes
        self.start_time = start_time
        self.complete_time = complete_time
        self.delivered_bytes = delivered_bytes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowRecord):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in self.__slots__
        )

    # Value equality (a record pickled through the run cache must compare
    # equal to the original) but identity hashing, as before.
    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return (
            f"FlowRecord(flow_id={self.flow_id}, scheme={self.scheme!r}, "
            f"{self.src}->{self.dst}, {self.category}, "
            f"size={self.size_bytes}, delivered={self.delivered_bytes}, "
            f"t=[{self.start_time}, {self.complete_time}])"
        )

    @property
    def finished(self) -> bool:
        return self.complete_time is not None

    def goodput_bps(self, now: Optional[float] = None) -> float:
        """Delivered bits over running time; unfinished flows need ``now``."""
        end = self.complete_time
        if end is None:
            if now is None:
                raise ValueError("unfinished flow needs `now` for goodput")
            end = now
        duration = end - self.start_time
        if duration <= 0:
            return 0.0
        return self.delivered_bytes * 8.0 / duration

    def completion_time(self) -> Optional[float]:
        """Flow completion time in seconds, if finished."""
        if self.complete_time is None:
            return None
        return self.complete_time - self.start_time


def goodputs_bps(records: Sequence[FlowRecord], now: Optional[float] = None) -> List[float]:
    """Goodput of every record (unfinished ones measured up to ``now``)."""
    return [record.goodput_bps(now) for record in records]


def goodput_table(
    records_by_scheme: Dict[str, Sequence[FlowRecord]],
    now: Optional[float] = None,
) -> Dict[str, float]:
    """Average goodput per scheme in bps — one column of Table 1."""
    return {
        scheme: mean(goodputs_bps(records, now))
        for scheme, records in records_by_scheme.items()
    }


def goodput_cdf(records: Sequence[FlowRecord], now: Optional[float] = None):
    """Empirical goodput CDF points — one curve of Fig. 8(a)/(b)."""
    return cdf_points(goodputs_bps(records, now))


def goodput_by_category(
    records: Sequence[FlowRecord], now: Optional[float] = None
) -> Dict[str, Dict[str, float]]:
    """Five-number goodput summary per flow category — Fig. 8(c)/(d)."""
    grouped: Dict[str, List[float]] = {}
    for record in records:
        grouped.setdefault(record.category, []).append(record.goodput_bps(now))
    return {category: summarize(values) for category, values in grouped.items()}


__all__ = [
    "FlowRecord",
    "goodputs_bps",
    "goodput_table",
    "goodput_cdf",
    "goodput_by_category",
]
