"""Flow tracing: per-flow congestion-window/RTT time series and CSV export.

The experiment drivers aggregate; this module records.  A
:class:`FlowTracer` samples one sender's control state (cwnd, ssthresh,
srtt, delivered, retransmissions) on a fixed interval, producing the raw
material for cwnd-versus-time plots — the debugging view every congestion
-control paper lives in — and exports to CSV for external plotting.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Dict, List, Optional, Sequence

from repro.metrics.collector import PeriodicSampler
from repro.sim.engine import Simulator
from repro.transport.tcp import TcpSender

#: Columns captured per sample, in export order.
TRACE_FIELDS = (
    "time",
    "cwnd",
    "ssthresh",
    "srtt",
    "delivered_segments",
    "flight",
    "retransmissions",
    "timeouts",
    "in_recovery",
)


class FlowTracer(PeriodicSampler):
    """Sample one sender's control variables over time."""

    def __init__(
        self,
        sim: Simulator,
        sender: TcpSender,
        interval: float = 1e-3,
        until: Optional[float] = None,
    ) -> None:
        super().__init__(sim, interval, until)
        self.sender = sender
        self.samples: List[Dict[str, float]] = []

    def sample(self) -> None:
        sender = self.sender
        srtt = sender.srtt
        ssthresh = sender.ssthresh
        self.samples.append(
            {
                "time": self.sim.now,
                "cwnd": sender.cwnd,
                "ssthresh": -1.0 if math.isinf(ssthresh) else ssthresh,
                "srtt": srtt if srtt is not None else -1.0,
                "delivered_segments": sender.delivered_segments,
                "flight": sender.flight,
                "retransmissions": sender.retransmissions,
                "timeouts": sender.timeouts,
                "in_recovery": 1.0 if sender.in_recovery else 0.0,
            }
        )

    # ------------------------------------------------------------------

    def series(self, field: str) -> List[float]:
        """One column of the trace as a list."""
        if field not in TRACE_FIELDS:
            raise ValueError(f"unknown trace field {field!r}")
        return [sample[field] for sample in self.samples]

    def max_cwnd(self) -> float:
        """Largest congestion window observed."""
        cwnds = self.series("cwnd")
        return max(cwnds) if cwnds else 0.0

    def to_csv(self) -> str:
        """The trace as CSV text (header + one row per sample)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(TRACE_FIELDS))
        writer.writeheader()
        for sample in self.samples:
            writer.writerow(sample)
        return buffer.getvalue()

    def write_csv(self, path: str) -> None:
        """Write the trace to ``path`` as CSV."""
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())


def rate_series_to_csv(
    times: Sequence[float], rates: Dict[str, Sequence[float]]
) -> str:
    """Export a RateSampler-style time/rate table as CSV.

    Columns: ``time`` then one column per series name, in sorted order —
    the exact table a Fig. 4/6/7 plot is drawn from.
    """
    names = sorted(rates)
    for name in names:
        if len(rates[name]) != len(times):
            raise ValueError(
                f"series {name!r} has {len(rates[name])} samples, "
                f"expected {len(times)}"
            )
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time"] + names)
    for i, time in enumerate(times):
        writer.writerow([time] + [rates[name][i] for name in names])
    return buffer.getvalue()


__all__ = ["FlowTracer", "TRACE_FIELDS", "rate_series_to_csv"]
