"""FCT, queue-depth and incast-collapse reducers for the workload matrix.

Flow completion time (FCT) is *the* short-flow metric of the DCN
literature; the reducers here turn a run's
:class:`~repro.metrics.goodput.FlowRecord` lists and queue-occupancy
samples into the tables the workload experiments print:

* :func:`fct_by_size_bin` — count / mean / p50 / p99 FCT per flow-size
  bin (mice / medium / elephant by default), because aggregate means
  hide exactly the short-flow tail the schemes differ on;
* :func:`queue_depth_p99` — the 99th-percentile sampled queue
  occupancy, the standing-queue metric DCTCP-style schemes optimize;
* :func:`goodput_collapse_ratio` — achieved vs ideal fan-in goodput
  for partition-aggregate rounds (1.0 = no collapse);
* :func:`check_fct_invariants` — every recorded FCT must be positive
  and fit inside the simulation horizon; violations raise rather than
  silently skewing percentiles.

Percentiles delegate to :func:`repro.metrics.stats.percentile`, whose
interpolation method is locked (see its docstring) so the numbers in
EXPERIMENTS.md are reproducible to the digit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.goodput import FlowRecord
from repro.metrics.stats import mean, percentile
from repro.sim.units import BitsPerSecond, Seconds

#: Default size-bin upper edges in bytes (inclusive), smallest first.
#: (0, 100 KB] mice — the partition-aggregate RPC regime;
#: (100 KB, 10 MB] medium; (10 MB, inf) elephants.
DEFAULT_BIN_EDGES: Tuple[int, ...] = (100_000, 10_000_000)

#: Labels for ``len(edges) + 1`` bins.
DEFAULT_BIN_LABELS: Tuple[str, ...] = ("mice", "medium", "elephant")


def size_bin_label(
    size_bytes: int,
    edges: Sequence[int] = DEFAULT_BIN_EDGES,
    labels: Sequence[str] = DEFAULT_BIN_LABELS,
) -> str:
    """The bin a flow of ``size_bytes`` falls into."""
    if len(labels) != len(edges) + 1:
        raise ValueError(
            f"{len(edges)} edges need {len(edges) + 1} labels, got {len(labels)}"
        )
    for edge, label in zip(edges, labels):
        if size_bytes <= edge:
            return label
    return labels[-1]


def completion_times(records: Sequence[FlowRecord]) -> List[float]:
    """FCTs of the finished records, in record order."""
    return [
        record.complete_time - record.start_time
        for record in records
        if record.complete_time is not None
    ]


def fct_by_size_bin(
    records: Sequence[FlowRecord],
    edges: Sequence[int] = DEFAULT_BIN_EDGES,
    labels: Sequence[str] = DEFAULT_BIN_LABELS,
) -> Dict[str, Dict[str, float]]:
    """Per-bin FCT statistics over the *finished* records.

    Every label appears in the result even when its bin is empty
    (count 0, statistics 0.0) so downstream tables keep a fixed shape
    across cells — an empty mice bin at load 0.1 must not reshape the
    load-0.9 table it is printed next to.
    """
    binned: Dict[str, List[float]] = {label: [] for label in labels}
    for record in records:
        if record.complete_time is None:
            continue
        label = size_bin_label(record.size_bytes, edges, labels)
        binned[label].append(record.complete_time - record.start_time)
    table: Dict[str, Dict[str, float]] = {}
    for label in labels:
        fcts = binned[label]
        if fcts:
            table[label] = {
                "count": float(len(fcts)),
                "mean_s": mean(fcts),
                "p50_s": percentile(fcts, 50),
                "p99_s": percentile(fcts, 99),
            }
        else:
            table[label] = {"count": 0.0, "mean_s": 0.0, "p50_s": 0.0, "p99_s": 0.0}
    return table


def queue_depth_p99(samples: Sequence[int]) -> float:
    """99th-percentile sampled queue occupancy (packets); 0.0 if empty."""
    if not samples:
        return 0.0
    return percentile([float(s) for s in samples], 99)


def goodput_collapse_ratio(
    jcts: Sequence[float],
    fan_in: int,
    response_bytes: int,
    access_rate_bps: BitsPerSecond,
) -> float:
    """Mean achieved/ideal goodput across fan-in rounds, in (0, 1].

    The ideal round time is the aggregator's access link serializing
    ``fan_in * response_bytes`` back to back; a round's achieved
    goodput is that payload over its actual JCT.  RTO-dominated rounds
    (the incast collapse) drag the ratio toward 0.
    """
    if fan_in < 1 or response_bytes < 1 or access_rate_bps <= 0:
        raise ValueError("fan_in, response_bytes and access rate must be positive")
    if not jcts:
        return 0.0
    ideal_s = fan_in * response_bytes * 8.0 / access_rate_bps
    ratios = [min(1.0, ideal_s / jct) for jct in jcts if jct > 0]
    if not ratios:
        return 0.0
    return mean(ratios)


def check_fct_invariants(
    records: Sequence[FlowRecord],
    duration: Seconds,
    context: str = "",
) -> int:
    """Every finished record's FCT must be positive and <= ``duration``.

    Returns the number of records checked; raises ``ValueError`` on the
    first violation.  Drivers run this before reducing, so a broken
    completion callback fails loudly instead of leaking an impossible
    FCT into a percentile.
    """
    checked = 0
    where = f" in {context}" if context else ""
    for record in records:
        if record.complete_time is None:
            continue
        fct = record.complete_time - record.start_time
        if fct <= 0.0:
            raise ValueError(
                f"non-positive FCT {fct!r} for flow {record.flow_id}{where}"
            )
        if fct > duration:
            raise ValueError(
                f"FCT {fct!r} exceeds simulation horizon {duration!r} "
                f"for flow {record.flow_id}{where}"
            )
        checked += 1
    return checked


def fct_summary(
    records: Sequence[FlowRecord], duration: Optional[Seconds] = None
) -> Dict[str, float]:
    """Overall finished-flow FCT summary (count/mean/p50/p99).

    When ``duration`` is given the records are invariant-checked first.
    """
    if duration is not None:
        check_fct_invariants(records, duration)
    fcts = completion_times(records)
    if not fcts:
        return {"count": 0.0, "mean_s": 0.0, "p50_s": 0.0, "p99_s": 0.0}
    return {
        "count": float(len(fcts)),
        "mean_s": mean(fcts),
        "p50_s": percentile(fcts, 50),
        "p99_s": percentile(fcts, 99),
    }


__all__ = [
    "DEFAULT_BIN_EDGES",
    "DEFAULT_BIN_LABELS",
    "size_bin_label",
    "completion_times",
    "fct_by_size_bin",
    "queue_depth_p99",
    "goodput_collapse_ratio",
    "check_fct_invariants",
    "fct_summary",
]
