"""Fairness metrics.

The paper's Fig. 6 claim is that XMP flows share a bottleneck equally
*irrespective of subflow count*; Jain's index over per-flow (not
per-subflow) rates is the standard scalar for that.
"""

from __future__ import annotations

from typing import Sequence


def jain_index(rates: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 is perfectly fair; ``1/n`` is maximally unfair.  An empty input or
    all-zero rates return 0.0.
    """
    if not rates:
        return 0.0
    if any(rate < 0 for rate in rates):
        raise ValueError("rates must be non-negative")
    total = sum(rates)
    squares = sum(rate * rate for rate in rates)
    if squares == 0.0:
        return 0.0
    return total * total / (len(rates) * squares)


def max_min_ratio(rates: Sequence[float]) -> float:
    """max/min of the rates; ``inf`` when the minimum is zero."""
    if not rates:
        raise ValueError("max_min_ratio of empty sequence")
    low = min(rates)
    high = max(rates)
    if low <= 0.0:
        return float("inf") if high > 0 else 1.0
    return high / low


__all__ = ["jain_index", "max_min_ratio"]
