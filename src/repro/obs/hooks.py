"""The active-profiler registry: how engine profiling gets switched on.

Mirrors :mod:`repro.validate.hooks` exactly, and for the same reason: this
module is dependency-free (it imports nothing from the rest of
:mod:`repro`) so the lowest layers — :mod:`repro.net`, :mod:`repro.sim` —
can consult it at *object construction time* without import cycles.

The contract with the hot paths is the one :mod:`repro.validate`
established:

* when no profiler is active, :class:`~repro.sim.engine.Simulator`
  instances keep their ``profiler`` slot ``None`` and the event loop pays
  a single aliased ``is None`` branch per event (acceptance bound: <3% on
  ``benchmarks/test_perf_engine``);
* when a profiler is active (via :func:`activate`, the :func:`profiling`
  context manager, or the ``$REPRO_PROFILE`` / ``$REPRO_TELEMETRY``
  environment variables consulted by the campaign runner), newly
  constructed :class:`~repro.net.network.Network` objects attach their
  simulator to it, and every fired event is bucketed by callback with its
  wall-time.

Activation nests: :func:`active_profiler` returns the innermost profiler,
so an experiment executed *inside* a profiled test gets its own fresh
profiler without disturbing the outer one.
"""

from __future__ import annotations

import contextlib
import os
from typing import TYPE_CHECKING, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle breaker, types only
    from repro.obs.profiler import Profiler

_ENV_PROFILE = "REPRO_PROFILE"
_ENV_TELEMETRY = "REPRO_TELEMETRY"

#: Stack of active profilers; the top one receives new simulators.
_ACTIVE: List["Profiler"] = []


def activate(profiler: "Profiler") -> None:
    """Push ``profiler``: simulators constructed from now on attach to it."""
    _ACTIVE.append(profiler)


def deactivate(profiler: Optional["Profiler"] = None) -> None:
    """Pop the innermost profiler (must match ``profiler`` when given)."""
    if not _ACTIVE:
        raise RuntimeError("no profiler is active")
    top = _ACTIVE.pop()
    if profiler is not None and top is not profiler:
        _ACTIVE.append(top)
        raise RuntimeError("deactivate() out of order: not the innermost profiler")


def active_profiler() -> Optional["Profiler"]:
    """The innermost active profiler, or ``None`` (the common case)."""
    if _ACTIVE:
        return _ACTIVE[-1]
    return None


def telemetry_dir() -> Optional[str]:
    """``$REPRO_TELEMETRY`` when set to a non-empty value, else ``None``.

    This is how the CLI's ``--telemetry DIR`` reaches campaign worker
    processes (children inherit the environment), and how a bare library
    caller opts a whole process into telemetry without touching every
    :class:`~repro.runner.campaign.Campaign` construction site.
    """
    value = os.environ.get(_ENV_TELEMETRY, "")
    return value or None


def profiling_requested() -> bool:
    """Whether runs should profile themselves.

    True when a profiler is explicitly active in this process, when
    ``$REPRO_PROFILE`` is set to a non-empty value other than ``0``, or
    when telemetry is requested (telemetry records embed the profile's
    per-component tables, so telemetry implies profiling).
    """
    if _ACTIVE:
        return True
    if os.environ.get(_ENV_PROFILE, "") not in ("", "0"):
        return True
    return telemetry_dir() is not None


@contextlib.contextmanager
def profiling(profiler: Optional["Profiler"] = None) -> Iterator["Profiler"]:
    """Run a block with an active profiler.

    Usage::

        with profiling() as prof:
            run_fig1(Fig1Config())
        print(prof.snapshot().format())
    """
    if profiler is None:
        from repro.obs.profiler import Profiler

        profiler = Profiler()
    activate(profiler)
    try:
        yield profiler
    finally:
        deactivate(profiler)


__all__ = [
    "activate",
    "deactivate",
    "active_profiler",
    "profiling_requested",
    "profiling",
    "telemetry_dir",
]
