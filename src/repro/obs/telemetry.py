"""Structured run telemetry: one JSONL document per executed cell.

A :class:`Telemetry` instance owns an output directory and appends one
:func:`~repro.obs.records.run_record` line per campaign cell to
``<dir>/runs.jsonl``.  It is threaded through the campaign runner the
same way the disk cache is: the **parent** process is the single writer
(workers only compute; their profile snapshots ride home inside the
pickled :class:`~repro.runner.spec.RunResult`), so concurrent cells never
interleave partial lines.

Switched on three equivalent ways:

* CLI: ``--telemetry DIR`` on any experiment subcommand (also exported
  as ``$REPRO_TELEMETRY`` so pool workers profile themselves);
* environment: ``REPRO_TELEMETRY=DIR`` — every
  :class:`~repro.runner.campaign.Campaign` in the process records;
* library: ``Campaign(telemetry=Telemetry(dir))``.

Telemetry implies profiling (the record's hot-spot table comes from the
engine profiler), so the campaign runner arranges ``$REPRO_PROFILE`` for
its workers whenever telemetry is active.
"""

from __future__ import annotations

import os
import pathlib
from typing import Any, Iterable, List, Optional

from repro.obs.hooks import telemetry_dir
from repro.obs.records import run_record, to_jsonl

#: File every campaign appends its per-run records to.
RUNS_FILENAME = "runs.jsonl"


class Telemetry:
    """Appends per-run JSONL records under one directory."""

    def __init__(self, directory: os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.path = self.directory / RUNS_FILENAME

    def record_results(self, results: Iterable[Any]) -> List[dict]:
        """Append one record per :class:`RunResult`; returns the records.

        Appends are a single ``write`` of the whole batch, so two
        campaigns sharing a directory interleave per batch, not per byte.
        """
        records = [run_record(result) for result in results]
        if records:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(to_jsonl(records))
        return records

    def read_records(self) -> List[dict]:
        """Parse every record written so far (newest last)."""
        import json

        if not self.path.exists():
            return []
        with open(self.path, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]


def from_environment() -> Optional[Telemetry]:
    """The process-wide telemetry sink, if ``$REPRO_TELEMETRY`` names one."""
    directory = telemetry_dir()
    if directory is None:
        return None
    return Telemetry(pathlib.Path(directory).expanduser())


__all__ = ["RUNS_FILENAME", "Telemetry", "from_environment"]
