"""The engine profiler: where simulation wall-time goes, by component.

A :class:`Profiler` is an opt-in observer on
:class:`~repro.sim.engine.Simulator` (the ``sim.profiler`` slot).  While
attached it buckets every fired event — count and cumulative callback
wall-time — under a *component* key derived from the callback's
``__module__``/``__qualname__`` (``net.link.Link._finish_transmission``,
``transport.tcp.TcpSender._on_ack``, ...), and tracks heap health:
pushes, pops, compactions and peak heap size.

The zero-cost-when-disabled contract matches :mod:`repro.validate`: an
unprofiled simulator pays one aliased ``is None`` branch per event in the
loop and one per ``schedule()`` — nothing else.  The engine itself never
reads a host clock; it calls the :attr:`Profiler.clock` the profiler
hands it, so the wall-clock read lives here (the one module besides the
runner's cell timer that simlint's SIM002 allowlists).

Wall-times are obviously host-dependent; everything else in a
:class:`ProfileSnapshot` — per-component event counts, heap counters — is
deterministic for a given spec, which is what the telemetry determinism
tests pin (see :func:`repro.obs.records.deterministic_view`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

#: Strip this prefix from callback modules: every component is ours.
_PACKAGE_PREFIX = "repro."


def component_of(callback: Callable[..., Any]) -> str:
    """The profiling bucket for a callback: ``module.Qualified.name``.

    Bound methods of the same class share one bucket (the function
    object, not the instance, is what identifies a component).
    """
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:
        qualname = type(callback).__name__
    module = getattr(callback, "__module__", "") or ""
    if module.startswith(_PACKAGE_PREFIX):
        module = module[len(_PACKAGE_PREFIX):]
    return f"{module}.{qualname}" if module else qualname


@dataclass(frozen=True)
class ComponentStat:
    """One profiling bucket: events fired and cumulative callback time."""

    component: str
    events: int
    wall_s: float


@dataclass(frozen=True)
class HeapStats:
    """Scheduler-health counters over the profiled window.

    The name predates the calendar-queue engine; the counters now cover
    its three tiers.  ``promotions``/``max_run`` count sorted-run rebuilds
    and the largest run seen, ``far_spills`` counts records pulled from
    the far heap into near buckets, and ``batches``/``batched_packets``
    count link service trains when batched mode is enabled (see
    :mod:`repro.net.link`); all zero under exact per-packet service.
    """

    pushes: int
    pops: int
    compactions: int
    peak_size: int
    promotions: int = 0
    far_spills: int = 0
    max_run: int = 0
    batches: int = 0
    batched_packets: int = 0


@dataclass(frozen=True)
class ProfileSnapshot:
    """An immutable, picklable view of a :class:`Profiler`'s counters.

    ``components`` is sorted by component name so two snapshots of the
    same deterministic run compare equal field-for-field except in the
    ``wall_s`` columns.
    """

    components: Tuple[ComponentStat, ...]
    heap: HeapStats
    events: int
    callback_wall_s: float

    def hotspots(self, limit: int = 10) -> List[ComponentStat]:
        """The costliest components by cumulative callback wall-time."""
        ranked = sorted(
            self.components, key=lambda c: (-c.wall_s, -c.events, c.component)
        )
        return ranked[:limit]

    def as_dict(self) -> dict:
        """A JSON-ready view (the telemetry record's ``profile`` field)."""
        return {
            "events": self.events,
            "callback_wall_s": self.callback_wall_s,
            "components": [
                {"component": c.component, "events": c.events, "wall_s": c.wall_s}
                for c in self.components
            ],
            "hotspots": [
                {"component": c.component, "events": c.events, "wall_s": c.wall_s}
                for c in self.hotspots()
            ],
            "heap": {
                "pushes": self.heap.pushes,
                "pops": self.heap.pops,
                "compactions": self.heap.compactions,
                "peak_size": self.heap.peak_size,
                "promotions": self.heap.promotions,
                "far_spills": self.heap.far_spills,
                "max_run": self.heap.max_run,
                "batches": self.heap.batches,
                "batched_packets": self.heap.batched_packets,
            },
        }

    def format(self, limit: int = 10) -> str:
        """A text hot-spot table for the ``profile`` CLI subcommand."""
        lines = [
            f"{'component':<52} {'events':>10} {'wall (ms)':>10} {'%time':>6}"
        ]
        total = self.callback_wall_s
        for stat in self.hotspots(limit):
            share = 100.0 * stat.wall_s / total if total > 0 else 0.0
            lines.append(
                f"{stat.component:<52} {stat.events:>10,} "
                f"{stat.wall_s * 1e3:>10.2f} {share:>5.1f}%"
            )
        heap = self.heap
        lines.append(
            f"{len(self.components)} components, {self.events:,} events, "
            f"{total * 1e3:.2f} ms in callbacks"
        )
        lines.append(
            f"heap: {heap.pushes:,} pushes, {heap.pops:,} pops, "
            f"{heap.compactions} compactions, peak size {heap.peak_size:,}"
        )
        lines.append(
            f"calendar: {heap.promotions:,} promotions "
            f"(max run {heap.max_run:,}), {heap.far_spills:,} far spills, "
            f"{heap.batches:,} link trains ({heap.batched_packets:,} packets)"
        )
        return "\n".join(lines)


class Profiler:
    """Buckets fired events and callback wall-time by component.

    Attach with :meth:`attach` (or construct objects under
    :func:`repro.obs.hooks.profiling` and let
    :class:`~repro.net.network.Network` attach its simulator for you),
    run the simulation, then :meth:`snapshot`.
    """

    #: The host clock the engine's timed dispatch uses.  Living here —
    #: not in the engine — keeps SIM002's "no wall clocks in simulation
    #: code" guarantee intact for repro.sim.
    clock = staticmethod(time.perf_counter)

    def __init__(self) -> None:
        #: component name -> [events, cumulative seconds]; mutated on the
        #: hot path, so plain lists instead of dataclasses.
        self._buckets: Dict[str, List[Any]] = {}
        #: function object -> component name memo (avoids re-deriving
        #: strings for every fired event).
        self._names: Dict[Any, str] = {}
        self._sims: List[Any] = []
        self.pushes = 0
        self.pops = 0
        self.peak_size = 0
        self.promotions = 0
        self.max_run = 0
        self.batches = 0
        self.batched_packets = 0

    # -- attachment ----------------------------------------------------

    def attach(self, sim: Any) -> None:
        """Start profiling ``sim`` (its ``profiler`` slot points here)."""
        sim.profiler = self
        self._sims.append(sim)

    def detach(self, sim: Any) -> None:
        """Stop profiling ``sim``; its counters stay in this profiler."""
        if sim.profiler is self:
            sim.profiler = None

    # -- engine callbacks (hot path) -----------------------------------

    def on_push(self, heap_size: int) -> None:
        """One ``schedule()``; ``heap_size`` is the heap after the push."""
        self.pushes += 1
        if heap_size > self.peak_size:
            self.peak_size = heap_size

    def on_fire(self, callback: Callable[..., Any], elapsed: float) -> None:
        """One fired event: ``elapsed`` seconds spent in ``callback``."""
        self.pops += 1
        func = getattr(callback, "__func__", callback)
        name = self._names.get(func)
        if name is None:
            name = component_of(callback)
            self._names[func] = name
        bucket = self._buckets.get(name)
        if bucket is None:
            self._buckets[name] = [1, elapsed]
        else:
            bucket[0] += 1
            bucket[1] += elapsed

    def on_discard(self) -> None:
        """One cancelled event popped (and skipped) by the loop."""
        self.pops += 1

    def on_promote(self, run_size: int) -> None:
        """One near-bucket promotion produced a sorted run of ``run_size``."""
        self.promotions += 1
        if run_size > self.max_run:
            self.max_run = run_size

    def on_batch(self, packets: int) -> None:
        """One batched link train served ``packets`` back-to-back packets."""
        self.batches += 1
        self.batched_packets += packets

    # -- results -------------------------------------------------------

    def snapshot(self) -> ProfileSnapshot:
        """Freeze the counters into a :class:`ProfileSnapshot`."""
        components = tuple(
            ComponentStat(name, bucket[0], bucket[1])
            for name, bucket in sorted(self._buckets.items())
        )
        heap = HeapStats(
            pushes=self.pushes,
            pops=self.pops,
            compactions=sum(sim.compactions for sim in self._sims),
            peak_size=self.peak_size,
            promotions=self.promotions,
            far_spills=sum(
                getattr(sim, "far_spills", 0) for sim in self._sims
            ),
            max_run=self.max_run,
            batches=self.batches,
            batched_packets=self.batched_packets,
        )
        return ProfileSnapshot(
            components=components,
            heap=heap,
            events=sum(c.events for c in components),
            callback_wall_s=sum(c.wall_s for c in components),
        )


__all__ = [
    "ComponentStat",
    "HeapStats",
    "ProfileSnapshot",
    "Profiler",
    "component_of",
]
