"""repro.obs — run telemetry and engine profiling.

The observability layer every performance PR measures itself against:

* :mod:`repro.obs.profiler` — the opt-in engine :class:`Profiler`
  (per-component event counts and callback wall-time, heap health);
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` recorder (one
  JSONL document per campaign cell);
* :mod:`repro.obs.records` — the typed record schema and the
  :func:`deterministic_view` the determinism tests pin;
* :mod:`repro.obs.hooks` — the dependency-free activation registry
  (mirrors :mod:`repro.validate.hooks`).

See OBSERVABILITY.md for the record schema and the overhead contract.
"""

from repro.obs.hooks import (
    activate,
    active_profiler,
    deactivate,
    profiling,
    profiling_requested,
    telemetry_dir,
)
from repro.obs.profiler import (
    ComponentStat,
    HeapStats,
    Profiler,
    ProfileSnapshot,
    component_of,
)
from repro.obs.records import (
    TELEMETRY_SCHEMA,
    QueueRecord,
    SamplerRecord,
    SenderRecord,
    deterministic_view,
    drain_link,
    drain_queue,
    drain_sampler,
    drain_sender,
    run_record,
    to_jsonl,
)
from repro.obs.telemetry import RUNS_FILENAME, Telemetry, from_environment

__all__ = [
    "activate",
    "active_profiler",
    "deactivate",
    "profiling",
    "profiling_requested",
    "telemetry_dir",
    "ComponentStat",
    "HeapStats",
    "Profiler",
    "ProfileSnapshot",
    "component_of",
    "TELEMETRY_SCHEMA",
    "QueueRecord",
    "SamplerRecord",
    "SenderRecord",
    "deterministic_view",
    "drain_link",
    "drain_queue",
    "drain_sampler",
    "drain_sender",
    "run_record",
    "to_jsonl",
    "RUNS_FILENAME",
    "Telemetry",
    "from_environment",
]
