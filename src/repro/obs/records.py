"""Typed telemetry records and their JSON/JSONL serialization.

One :func:`run_record` per executed campaign cell is the document the
telemetry layer emits (see :class:`repro.obs.telemetry.Telemetry`); the
drain helpers below turn live measurement objects — queues, links,
periodic samplers, TCP senders — into frozen records, so an experiment or
test can snapshot its observable state without holding simulator
references.

Determinism contract: every field of every record is a pure function of
the spec **except** the wall-clock measurements (``wall_time_s``,
``wall_sim_ratio`` and the ``wall_s`` columns inside the profile) and the
cache-provenance fields (``source``/``cached`` say where a result came
from, not what it is).  :func:`deterministic_view` strips exactly those,
and the telemetry determinism tests pin that what remains is identical
across ``--jobs 1`` / ``--jobs 4`` and cache hit / miss.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only; see run_record()
    from repro.runner.spec import RunResult

#: Bump when the JSONL record layout changes incompatibly.
#: 2: added the ``backend`` field (packet vs fluid execution).
TELEMETRY_SCHEMA = 2

#: Wall-clock top-level record fields (host-dependent, never compared).
WALL_CLOCK_FIELDS = ("wall_time_s", "wall_sim_ratio")

#: Provenance top-level record fields (depend on cache state, not spec).
PROVENANCE_FIELDS = ("source", "cached")


# ----------------------------------------------------------------------
# Drained object records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QueueRecord:
    """One queue's lifetime counters (see ``QueueStats``) plus residency."""

    name: str
    enqueued: int
    dequeued: int
    dropped: int
    marked: int
    max_occupancy: int
    occupancy: int

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "enqueued": self.enqueued,
            "dequeued": self.dequeued,
            "dropped": self.dropped,
            "marked": self.marked,
            "max_occupancy": self.max_occupancy,
            "occupancy": self.occupancy,
        }


@dataclass(frozen=True)
class SamplerRecord:
    """A periodic sampler's accumulated time-series, name-sorted."""

    kind: str
    times: Tuple[float, ...]
    series: Tuple[Tuple[str, Tuple[float, ...]], ...]

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "times": list(self.times),
            "series": {name: list(values) for name, values in self.series},
        }


@dataclass(frozen=True)
class SenderRecord:
    """One TCP sender's terminal state."""

    name: str
    delivered_segments: int
    retransmissions: int
    cwnd: float
    srtt: Optional[float]
    completed: bool
    running: bool

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "delivered_segments": self.delivered_segments,
            "retransmissions": self.retransmissions,
            "cwnd": self.cwnd,
            "srtt": self.srtt,
            "completed": self.completed,
            "running": self.running,
        }


def drain_queue(name: str, queue: Any) -> QueueRecord:
    """Freeze one queue's ``stats`` counters into a :class:`QueueRecord`."""
    stats = queue.stats
    return QueueRecord(
        name=name,
        enqueued=stats.enqueued,
        dequeued=stats.dequeued,
        dropped=stats.dropped,
        marked=stats.marked,
        max_occupancy=stats.max_occupancy,
        occupancy=queue.occupancy,
    )


def drain_link(link: Any) -> QueueRecord:
    """Freeze a link's egress queue under the link's name."""
    return drain_queue(link.name, link.queue)


def drain_sampler(sampler: Any) -> SamplerRecord:
    """Freeze any :class:`~repro.metrics.collector.PeriodicSampler`.

    Recognizes the three concrete samplers structurally (``rates`` /
    ``occupancy`` / ``samples``), so subclasses that keep those attribute
    names drain for free.
    """
    for attr in ("rates", "occupancy", "samples"):
        series = getattr(sampler, attr, None)
        if series is not None:
            break
    else:
        raise TypeError(
            f"cannot drain {type(sampler).__name__}: no rates/occupancy/"
            "samples attribute"
        )
    return SamplerRecord(
        kind=type(sampler).__name__,
        times=tuple(getattr(sampler, "times", ())),
        series=tuple(
            (name, tuple(values)) for name, values in sorted(series.items())
        ),
    )


def drain_sender(name: str, sender: Any) -> SenderRecord:
    """Freeze one :class:`~repro.transport.tcp.TcpSender`'s state."""
    return SenderRecord(
        name=name,
        delivered_segments=sender.delivered_segments,
        retransmissions=sender.retransmissions,
        cwnd=sender.cwnd,
        srtt=sender.srtt,
        completed=sender.completed,
        running=sender.running,
    )


# ----------------------------------------------------------------------
# The per-run JSONL document
# ----------------------------------------------------------------------


def run_record(result: "RunResult") -> dict:
    """The one-JSONL-document-per-run telemetry record for a cell.

    Fields: schema version, spec fingerprint/kind/label, cache tier the
    result came from, event count, invariant checks, simulated duration
    (when the config declares one), wall time and wall/sim ratio, and —
    for profiled runs — the engine profile (per-component event counts,
    hot-spot table, heap health).  Cached cells carry ``"profile": null``:
    nothing executed, so there is nothing to profile.
    """
    # Imported here, not at module scope: repro.net.network consults
    # repro.obs.hooks at import time, and pulling repro.runner (which
    # imports the repro package root) into that chain would be a cycle.
    from repro.runner.cache import spec_fingerprint
    from repro.runner.registry import BACKEND_PACKET, backend_of

    try:
        backend = backend_of(result.spec.kind)
    except KeyError:
        backend = BACKEND_PACKET
    metrics = result.metrics
    sim_time = getattr(result.spec.config, "duration", None)
    if sim_time is not None:
        sim_time = float(sim_time)
    ratio = None
    if sim_time and not metrics.cached:
        ratio = metrics.wall_time_s / sim_time
    profile = metrics.profile
    return {
        "schema": TELEMETRY_SCHEMA,
        "fingerprint": spec_fingerprint(result.spec),
        "kind": result.spec.kind,
        "backend": backend,
        "label": result.spec.label(),
        "source": metrics.source,
        "cached": metrics.cached,
        "events": metrics.events,
        "invariant_checks": metrics.invariant_checks,
        "sim_time_s": sim_time,
        "wall_time_s": metrics.wall_time_s,
        "wall_sim_ratio": ratio,
        "profile": profile.as_dict() if profile is not None else None,
    }


def deterministic_view(record: dict, keep_profile: bool = True) -> dict:
    """The spec-determined subset of a record (what determinism tests pin).

    Drops the wall-clock and provenance fields; inside the profile, keeps
    per-component *event counts* and the heap counters but drops the
    ``wall_s`` columns and the wall-ordered hot-spot table.  Pass
    ``keep_profile=False`` when comparing a profiled (miss) record against
    an unprofiled (cache hit) one.
    """
    view = {
        key: value
        for key, value in record.items()
        if key not in WALL_CLOCK_FIELDS
        and key not in PROVENANCE_FIELDS
        and key != "profile"
    }
    if keep_profile:
        profile = record.get("profile")
        if profile is not None:
            profile = {
                "events": profile["events"],
                "components": [
                    {"component": c["component"], "events": c["events"]}
                    for c in profile["components"]
                ],
                "heap": profile["heap"],
            }
        view["profile"] = profile
    return view


def to_jsonl(records: Any) -> str:
    """Serialize records (dicts) as sorted-key JSONL, one line each."""
    return "".join(
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        for record in records
    )


__all__ = [
    "TELEMETRY_SCHEMA",
    "WALL_CLOCK_FIELDS",
    "PROVENANCE_FIELDS",
    "QueueRecord",
    "SamplerRecord",
    "SenderRecord",
    "drain_queue",
    "drain_link",
    "drain_sampler",
    "drain_sender",
    "run_record",
    "deterministic_view",
    "to_jsonl",
]
