"""Parametric partition-aggregate (incast) fan-in jobs.

The paper's incast workload (:mod:`repro.traffic.incast`) is pinned to
its §5.2.1 constants — 8 servers, 2 KB requests, 64 KB responses, TCP
everywhere.  The fan-in *sweep* the AMP line of work runs needs those
knobs open: how does each scheme's goodput collapse as the number of
simultaneous responders into one access link grows from 2 to
``hosts-1``?

A :class:`PartitionAggregateJob` is one aggregator round: the
aggregator sends ``request_bytes`` to ``fan_in`` workers; each worker
answers with ``response_bytes`` *through the scheme under test* (that
is the difference from the paper workload — here the responses are the
measured traffic, so XMP vs DCTCP vs LIA incast behaviour is
comparable).  The job completes when all responses have arrived; the
pattern immediately starts the next round, keeping
``concurrent_jobs`` aggregators busy.

Per-job metrics feed :func:`repro.metrics.fct.goodput_collapse_ratio`:
the ideal JCT is the time the aggregator's access link would need to
carry ``fan_in * response_bytes`` back to back, and the ratio of ideal
to achieved is the collapse factor (1.0 = no collapse; RTO-dominated
rounds push it toward 0).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from repro.sim.units import Bytes
from repro.traffic.factory import TransferFactory

#: Default request size — the paper's 2 KB query.
DEFAULT_REQUEST_BYTES = 2_000
#: Default response size — the paper's 64 KB answer.
DEFAULT_RESPONSE_BYTES = 64_000


class PartitionAggregateJob:
    """One aggregator round at a given fan-in."""

    def __init__(
        self,
        request_factory: TransferFactory,
        response_factory: TransferFactory,
        aggregator: str,
        workers: Sequence[str],
        request_bytes: int,
        response_bytes: int,
        start_time: float,
        on_done: Callable[["PartitionAggregateJob"], None],
    ) -> None:
        self.request_factory = request_factory
        self.response_factory = response_factory
        self.aggregator = aggregator
        self.workers = list(workers)
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.start_time = start_time
        self.complete_time: Optional[float] = None
        self._on_done = on_done
        self._responses_pending = len(self.workers)

    @property
    def fan_in(self) -> int:
        return len(self.workers)

    def launch(self) -> None:
        """Send every request simultaneously."""
        for worker in self.workers:
            self.request_factory.launch(
                self.aggregator,
                worker,
                self.request_bytes,
                on_complete=self._request_done(worker),
            )

    def _request_done(self, worker: str) -> Callable:
        def callback(record) -> None:
            # Request delivered; the worker responds at once, using the
            # scheme under test.
            self.response_factory.launch(
                worker,
                self.aggregator,
                self.response_bytes,
                on_complete=self._response_done,
            )

        return callback

    def _response_done(self, record) -> None:
        self._responses_pending -= 1
        if self._responses_pending == 0:
            self.complete_time = self.request_factory.network.sim.now
            self._on_done(self)

    def completion_time(self) -> Optional[float]:
        """JCT in seconds, if finished."""
        if self.complete_time is None:
            return None
        return self.complete_time - self.start_time


class PartitionAggregatePattern:
    """Keep ``concurrent_jobs`` fan-in rounds running, recording JCTs."""

    def __init__(
        self,
        request_factory: TransferFactory,
        response_factory: TransferFactory,
        hosts: Sequence[str],
        fan_in: int,
        request_bytes: Bytes = DEFAULT_REQUEST_BYTES,
        response_bytes: Bytes = DEFAULT_RESPONSE_BYTES,
        concurrent_jobs: int = 1,
        rng: Optional[random.Random] = None,
    ) -> None:
        if fan_in < 1:
            raise ValueError(f"fan_in must be >= 1, got {fan_in}")
        if len(hosts) < fan_in + 1:
            raise ValueError(f"need at least {fan_in + 1} hosts, got {len(hosts)}")
        if concurrent_jobs < 1:
            raise ValueError(f"concurrent_jobs must be >= 1, got {concurrent_jobs}")
        self.request_factory = request_factory
        self.response_factory = response_factory
        self.network = request_factory.network
        self.hosts = list(hosts)
        self.fan_in = fan_in
        self.request_bytes = int(request_bytes)
        self.response_bytes = int(response_bytes)
        self.concurrent_jobs = concurrent_jobs
        self.rng = rng if rng is not None else random.Random(0)
        self.completed_jobs: List[PartitionAggregateJob] = []
        self.active_jobs: List[PartitionAggregateJob] = []
        self.jobs_started = 0
        self._stopped = False

    def start(self) -> None:
        """Launch the initial batch of concurrent aggregator rounds."""
        for _ in range(self.concurrent_jobs):
            self._start_job()

    def stop(self) -> None:
        """Finish running rounds but start no new ones."""
        self._stopped = True

    def completion_times(self) -> List[float]:
        """All recorded JCTs, seconds."""
        times = []
        for job in self.completed_jobs:
            jct = job.completion_time()
            if jct is not None:
                times.append(jct)
        return times

    def unfinished_ages(self, now: float) -> List[float]:
        """Ages of rounds still running (finite-horizon accounting)."""
        return [now - job.start_time for job in self.active_jobs]

    # ------------------------------------------------------------------

    def _start_job(self) -> None:
        if self._stopped:
            return
        chosen = self.rng.sample(self.hosts, self.fan_in + 1)
        self.jobs_started += 1
        job = PartitionAggregateJob(
            self.request_factory,
            self.response_factory,
            chosen[0],
            chosen[1:],
            self.request_bytes,
            self.response_bytes,
            self.network.sim.now,
            self._job_finished,
        )
        self.active_jobs.append(job)
        job.launch()

    def _job_finished(self, job: PartitionAggregateJob) -> None:
        self.active_jobs.remove(job)
        self.completed_jobs.append(job)
        self._start_job()


__all__ = [
    "DEFAULT_REQUEST_BYTES",
    "DEFAULT_RESPONSE_BYTES",
    "PartitionAggregateJob",
    "PartitionAggregatePattern",
]
