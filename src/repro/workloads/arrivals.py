"""Open-loop arrival processes and target-load calibration.

The standard DCN evaluation knob is *offered load*: the fraction of the
network's deliverable capacity that the arriving flows would consume if
every byte were delivered.  Given a topology capacity ``C`` (bits/s), a
mean flow size ``S`` (bytes) and a target load ``rho`` in (0, 1], the
network-wide flow arrival rate is

    lambda = rho * C / (8 * S)     [flows per second]

Capacity comes from the topology: for the k-ary fat tree the network is
rearrangeably non-blocking, so the aggregate host access bandwidth
equals twice the bisection bandwidth and is the binding capacity for
uniformly-spread traffic (:func:`workload_capacity_bps` prefers the
topology's ``bisection_bandwidth_bps`` when it exposes one and falls
back to summing host access links).

Two interarrival processes are provided; both are *open loop* — arrival
times never depend on completions, which is what makes overload (load
near or above 1) expressible at all:

* :class:`PoissonArrivals` — exponential gaps, the memoryless default
  every FCT study uses;
* :class:`LognormalArrivals` — burstier gaps with the same mean, for
  sensitivity checks (``sigma`` controls burstiness; the mean is
  calibrated so the target load is preserved).
"""

from __future__ import annotations

import math
import random

from repro.net.network import Network
from repro.sim.units import BitsPerSecond, Bytes


def offered_flow_rate(
    load: float, capacity_bps: BitsPerSecond, mean_size_bytes: Bytes
) -> float:
    """Network-wide flow arrival rate (flows/s) hitting ``load``."""
    if not 0.0 < load:
        raise ValueError(f"load must be positive, got {load}")
    if capacity_bps <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_bps}")
    if mean_size_bytes <= 0:
        raise ValueError(f"mean flow size must be positive, got {mean_size_bytes}")
    return load * capacity_bps / (8.0 * mean_size_bytes)


def workload_capacity_bps(net: Network) -> BitsPerSecond:
    """The capacity the load fraction is defined against.

    Prefers the topology's declared bisection bandwidth (doubled: for a
    non-blocking fabric, all-to-all traffic is bounded by the hosts'
    aggregate access bandwidth, which is twice the bisection).  Falls
    back to summing each host's egress link rates on topologies that do
    not declare one.
    """
    bisection = getattr(net, "bisection_bandwidth_bps", None)
    if callable(bisection):
        return 2.0 * bisection()
    total = 0.0
    for host in net.hosts.values():
        for link in net.adjacency.get(host, []):
            total += link.rate_bps
    if total <= 0:
        raise ValueError("network has no host access links to derive capacity from")
    return total


class ArrivalProcess:
    """Protocol: successive interarrival gaps at a configured rate."""

    #: Registry name ("poisson", "lognormal"); set by subclasses.
    name: str = ""

    def __init__(self, rate_per_s: float) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate_per_s}")
        self.rate_per_s = rate_per_s

    def next_gap(self, rng: random.Random) -> float:
        """Draw the next interarrival gap in seconds (strictly positive)."""
        raise NotImplementedError

    def mean_gap_s(self) -> float:
        """Analytic mean gap — 1/rate for every process here."""
        return 1.0 / self.rate_per_s


class PoissonArrivals(ArrivalProcess):
    """Memoryless exponential interarrival gaps."""

    name = "poisson"

    def next_gap(self, rng: random.Random) -> float:
        return rng.expovariate(self.rate_per_s)


class LognormalArrivals(ArrivalProcess):
    """Lognormal gaps with mean 1/rate; ``sigma`` sets the burstiness.

    ``mu`` is solved from ``E[gap] = exp(mu + sigma^2/2) = 1/rate`` so a
    lognormal schedule offers the same long-run load as the Poisson one.
    """

    name = "lognormal"

    def __init__(self, rate_per_s: float, sigma: float = 1.0) -> None:
        super().__init__(rate_per_s)
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.sigma = sigma
        self.mu = math.log(1.0 / rate_per_s) - sigma * sigma / 2.0

    def next_gap(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)


#: Names accepted by :func:`make_arrivals` (and the workload CLI).
ARRIVAL_NAMES = ("poisson", "lognormal")


def make_arrivals(
    arrival: str, rate_per_s: float, sigma: float = 1.0
) -> ArrivalProcess:
    """Build the named arrival process at ``rate_per_s``."""
    if arrival == "poisson":
        return PoissonArrivals(rate_per_s)
    if arrival == "lognormal":
        return LognormalArrivals(rate_per_s, sigma=sigma)
    raise ValueError(
        f"unknown arrival process {arrival!r} (known: {', '.join(ARRIVAL_NAMES)})"
    )


__all__ = [
    "offered_flow_rate",
    "workload_capacity_bps",
    "ArrivalProcess",
    "PoissonArrivals",
    "LognormalArrivals",
    "ARRIVAL_NAMES",
    "make_arrivals",
]
