"""Empirical flow-size distributions and seeded inverse-CDF samplers.

The production-traffic layer needs flow sizes that look like a real data
center, not like the paper's fixed 2-16 MB transfers.  Two empirical
CDFs are shipped as data:

* ``websearch`` — the web-search workload measured in the DCTCP paper
  (Alizadeh et al., SIGCOMM 2010), as tabulated in the pFabric
  simulation suite: mostly short partition-aggregate responses with a
  heavy 1-30 MB tail.
* ``datamining`` — the data-mining workload from VL2 (Greenberg et al.,
  SIGCOMM 2009), same provenance: >80 % of flows under 10 KB while
  >95 % of the *bytes* ride in multi-MB elephants.

Both tables store ``(size_bytes, cumulative_probability)`` knots with
sizes converted from the original packet counts at 1460 B per packet.
Sampling is inverse-transform with linear interpolation between knots,
so the empirical CDF of many draws converges to the piecewise-linear
interpolant exactly (the sampler property tests assert a KS-style bound
at every knot).

Synthetic samplers (``uniform``, ``lognormal``, ``fixed``) cover
controlled experiments; every sampler exposes the same three-method
surface (:meth:`~SizeSampler.sample`, :meth:`~SizeSampler.mean_bytes`,
``name``) so arrival calibration in :mod:`repro.workloads.arrivals`
never special-cases a distribution.

All draws flow through a caller-supplied seeded ``random.Random`` (a
:class:`~repro.sim.random.RandomStreams` stream in experiment code), so
schedules are bit-reproducible per seed — simlint SIM001/SIM013 apply
here like everywhere else.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Dict, Optional, Sequence, Tuple

from repro.sim.units import Bytes

#: Packet size used to convert the published packet-count CDFs to bytes.
CDF_PACKET_BYTES = 1460

#: Web-search (DCTCP) flow-size CDF, (packets, cumulative probability).
_WEBSEARCH_PACKETS: Tuple[Tuple[float, float], ...] = (
    (1, 0.0),
    (6, 0.15),
    (13, 0.2),
    (19, 0.3),
    (33, 0.4),
    (53, 0.53),
    (133, 0.6),
    (667, 0.7),
    (1333, 0.8),
    (3333, 0.9),
    (6667, 0.97),
    (20000, 1.0),
)

#: Data-mining (VL2) flow-size CDF, (packets, cumulative probability).
_DATAMINING_PACKETS: Tuple[Tuple[float, float], ...] = (
    (1, 0.0),
    (1, 0.5),
    (2, 0.6),
    (3, 0.7),
    (7, 0.8),
    (267, 0.9),
    (2107, 0.95),
    (66667, 0.99),
    (666667, 1.0),
)


class SizeSampler:
    """Protocol every flow-size sampler implements."""

    #: Registry name ("websearch", "uniform", ...); set by subclasses.
    name: str = ""

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size in bytes (always >= 1)."""
        raise NotImplementedError

    def mean_bytes(self) -> float:
        """Analytic mean of the distribution, for load calibration."""
        raise NotImplementedError


class SizeCDF(SizeSampler):
    """Piecewise-linear empirical CDF with inverse-transform sampling.

    ``points`` are ``(size_bytes, cumulative_probability)`` knots sorted
    by probability; the first knot may carry probability 0 and the last
    must carry probability 1.  Between knots both the CDF and its
    inverse are linear in size.
    """

    def __init__(
        self, name: str, points: Sequence[Tuple[float, float]], scale: float = 1.0
    ) -> None:
        if scale <= 0:
            raise ValueError(f"size scale must be positive, got {scale}")
        if len(points) < 2:
            raise ValueError("a CDF needs at least two points")
        self.name = name
        self.scale = scale
        sizes = [float(size) * scale for size, _ in points]
        probs = [float(p) for _, p in points]
        if any(b < a for a, b in zip(probs, probs[1:])):
            raise ValueError(f"CDF probabilities must be non-decreasing: {name}")
        if any(b < a for a, b in zip(sizes, sizes[1:])):
            raise ValueError(f"CDF sizes must be non-decreasing: {name}")
        if probs[-1] != 1.0:
            raise ValueError(f"CDF must end at probability 1.0: {name}")
        if any(size <= 0 for size in sizes):
            raise ValueError(f"CDF sizes must be positive: {name}")
        self._sizes = sizes
        self._probs = probs

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        probs = self._probs
        sizes = self._sizes
        if u <= probs[0]:
            return max(1, int(round(sizes[0])))
        index = bisect.bisect_left(probs, u)
        lo_p, hi_p = probs[index - 1], probs[index]
        lo_s, hi_s = sizes[index - 1], sizes[index]
        if hi_p == lo_p:
            return max(1, int(round(hi_s)))
        fraction = (u - lo_p) / (hi_p - lo_p)
        return max(1, int(round(lo_s + (hi_s - lo_s) * fraction)))

    def mean_bytes(self) -> float:
        """Trapezoid mean: each linear segment contributes its midpoint."""
        total = 0.0
        for i in range(1, len(self._probs)):
            weight = self._probs[i] - self._probs[i - 1]
            total += weight * (self._sizes[i] + self._sizes[i - 1]) / 2.0
        return total

    def cdf_at(self, size_bytes: float) -> float:
        """Forward evaluation F(size): the interpolant the sampler inverts."""
        sizes = self._sizes
        probs = self._probs
        if size_bytes <= sizes[0]:
            return probs[0] if size_bytes < sizes[0] else self._prob_at_size(sizes[0])
        if size_bytes >= sizes[-1]:
            return 1.0
        index = bisect.bisect_right(sizes, size_bytes)
        lo_s, hi_s = sizes[index - 1], sizes[index]
        lo_p, hi_p = probs[index - 1], probs[index]
        if hi_s == lo_s:
            return hi_p
        return lo_p + (hi_p - lo_p) * (size_bytes - lo_s) / (hi_s - lo_s)

    def _prob_at_size(self, size: float) -> float:
        """Largest knot probability at exactly ``size`` (vertical steps)."""
        prob = 0.0
        for s, p in zip(self._sizes, self._probs):
            if s <= size:
                prob = p
        return prob

    def knots(self) -> Tuple[Tuple[float, float], ...]:
        """The (size_bytes, probability) knots, after scaling."""
        return tuple(zip(self._sizes, self._probs))


class UniformSizes(SizeSampler):
    """Uniform flow sizes in ``[min_bytes, max_bytes]``."""

    def __init__(self, min_bytes: Bytes, max_bytes: Bytes) -> None:
        if min_bytes < 1 or max_bytes < min_bytes:
            raise ValueError(
                f"need 1 <= min <= max, got [{min_bytes}, {max_bytes}]"
            )
        self.name = "uniform"
        self.min_bytes = int(min_bytes)
        self.max_bytes = int(max_bytes)

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.min_bytes, self.max_bytes)

    def mean_bytes(self) -> float:
        return (self.min_bytes + self.max_bytes) / 2.0


class LognormalSizes(SizeSampler):
    """Lognormal sizes parameterised by their mean and shape ``sigma``.

    ``mu`` is derived so the analytic mean equals ``mean_bytes``:
    ``E[X] = exp(mu + sigma^2/2)``.
    """

    def __init__(self, mean_bytes: Bytes, sigma: float = 1.0) -> None:
        if mean_bytes < 1:
            raise ValueError(f"mean must be >= 1 byte, got {mean_bytes}")
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.name = "lognormal"
        self._mean = float(mean_bytes)
        self.sigma = sigma
        self.mu = math.log(self._mean) - sigma * sigma / 2.0

    def sample(self, rng: random.Random) -> int:
        return max(1, int(round(rng.lognormvariate(self.mu, self.sigma))))

    def mean_bytes(self) -> float:
        return self._mean


class FixedSizes(SizeSampler):
    """Every flow the same size — the degenerate control case."""

    def __init__(self, size_bytes: Bytes) -> None:
        if size_bytes < 1:
            raise ValueError(f"size must be >= 1 byte, got {size_bytes}")
        self.name = "fixed"
        self.size_bytes = int(size_bytes)

    def sample(self, rng: random.Random) -> int:
        return self.size_bytes

    def mean_bytes(self) -> float:
        return float(self.size_bytes)


def _packets_to_bytes(
    table: Sequence[Tuple[float, float]],
) -> Tuple[Tuple[float, float], ...]:
    return tuple((packets * CDF_PACKET_BYTES, prob) for packets, prob in table)


#: The shipped empirical tables in bytes.
WEBSEARCH_POINTS = _packets_to_bytes(_WEBSEARCH_PACKETS)
DATAMINING_POINTS = _packets_to_bytes(_DATAMINING_PACKETS)

#: Names accepted by :func:`make_sampler` (and the workload CLI).
WORKLOAD_NAMES = ("websearch", "datamining", "uniform", "lognormal", "fixed")

#: Defaults for the synthetic samplers, chosen near the websearch mean so
#: load calibration lands in the same regime across workload names.
DEFAULT_UNIFORM_RANGE = (10_000, 4_000_000)
DEFAULT_LOGNORMAL_MEAN = 2_000_000
DEFAULT_LOGNORMAL_SIGMA = 1.5
DEFAULT_FIXED_BYTES = 2_000_000


def make_sampler(
    workload: str,
    size_scale: float = 1.0,
    params: Optional[Dict[str, float]] = None,
) -> SizeSampler:
    """Build the named flow-size sampler.

    ``size_scale`` multiplies every size (the same scaled-down-testbed
    knob the fat-tree scenarios use for their MB-scale flows);
    ``params`` overrides the synthetic samplers' defaults
    (``min_bytes``/``max_bytes``, ``mean_bytes``/``sigma``,
    ``size_bytes``).
    """
    if size_scale <= 0:
        raise ValueError(f"size_scale must be positive, got {size_scale}")
    p = dict(params or {})
    if workload == "websearch":
        return SizeCDF("websearch", WEBSEARCH_POINTS, scale=size_scale)
    if workload == "datamining":
        return SizeCDF("datamining", DATAMINING_POINTS, scale=size_scale)
    if workload == "uniform":
        low = p.get("min_bytes", DEFAULT_UNIFORM_RANGE[0])
        high = p.get("max_bytes", DEFAULT_UNIFORM_RANGE[1])
        return UniformSizes(
            max(1, int(low * size_scale)), max(1, int(high * size_scale))
        )
    if workload == "lognormal":
        mean = p.get("mean_bytes", DEFAULT_LOGNORMAL_MEAN)
        sigma = p.get("sigma", DEFAULT_LOGNORMAL_SIGMA)
        return LognormalSizes(max(1, int(mean * size_scale)), sigma)
    if workload == "fixed":
        size = p.get("size_bytes", DEFAULT_FIXED_BYTES)
        return FixedSizes(max(1, int(size * size_scale)))
    raise ValueError(
        f"unknown workload {workload!r} (known: {', '.join(WORKLOAD_NAMES)})"
    )


__all__ = [
    "CDF_PACKET_BYTES",
    "WEBSEARCH_POINTS",
    "DATAMINING_POINTS",
    "WORKLOAD_NAMES",
    "SizeSampler",
    "SizeCDF",
    "UniformSizes",
    "LognormalSizes",
    "FixedSizes",
    "make_sampler",
]
