"""Pure, deterministic flow-schedule generation.

A *schedule* is the complete list of flow arrivals for one run — each a
:class:`FlowArrival` of (time, src, dst, size) — generated up front from
seeded streams and nothing else.  Splitting generation from execution
buys three things:

* **determinism is trivial to prove**: the schedule is a pure function
  of ``(hosts, sampler, process, rng)``, so the sampler property tests
  can assert byte-identical schedules without running a simulation, and
  ``--jobs 1`` vs ``--jobs 4`` campaigns reuse the proof (each cell
  regenerates the same schedule from its spec);
* **open-loop semantics by construction**: arrival times can not
  depend on completions because completions do not exist yet;
* the planned fluid backend (ROADMAP item 1) can consume the same
  schedules without touching the packet layer.

Source hosts are drawn uniformly; destinations uniformly among the
other hosts (no self-flows) — the uniform traffic matrix every
websearch/datamining FCT study uses.
"""

from __future__ import annotations

import random
from typing import List, NamedTuple, Sequence

from repro.sim.units import Seconds
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.cdf import SizeSampler


class FlowArrival(NamedTuple):
    """One scheduled flow: when it starts, between whom, how many bytes."""

    time: float
    src: str
    dst: str
    size_bytes: int


#: Backstop against runaway schedules (load >> 1 with a long horizon).
MAX_SCHEDULED_FLOWS = 1_000_000


def build_schedule(
    hosts: Sequence[str],
    sampler: SizeSampler,
    process: ArrivalProcess,
    rng: random.Random,
    duration: Seconds,
    max_flows: int = MAX_SCHEDULED_FLOWS,
) -> List[FlowArrival]:
    """Generate every arrival in ``[0, duration)``.

    Draw order per arrival is fixed (gap, src, dst, size) so schedules
    stay byte-identical across refactors that do not change the draw
    count — the golden workload cells pin exactly this.
    """
    if len(hosts) < 2:
        raise ValueError(f"need at least 2 hosts, got {len(hosts)}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    ordered = list(hosts)
    schedule: List[FlowArrival] = []
    now = 0.0
    while len(schedule) < max_flows:
        now += process.next_gap(rng)
        if now >= duration:
            break
        src_index = rng.randrange(len(ordered))
        dst_index = rng.randrange(len(ordered) - 1)
        if dst_index >= src_index:
            dst_index += 1
        size = sampler.sample(rng)
        schedule.append(
            FlowArrival(now, ordered[src_index], ordered[dst_index], size)
        )
    return schedule


def offered_bytes(schedule: Sequence[FlowArrival]) -> int:
    """Total bytes the schedule offers (for load sanity checks)."""
    return sum(arrival.size_bytes for arrival in schedule)


__all__ = ["FlowArrival", "MAX_SCHEDULED_FLOWS", "build_schedule", "offered_bytes"]
