"""Open-loop execution of a flow schedule, plus elephant/mice mixes.

:class:`OpenLoopPattern` replays a precomputed schedule
(:func:`repro.workloads.schedule.build_schedule`) against a
:class:`~repro.traffic.factory.TransferFactory`: every arrival is
scheduled as a simulator event at its exact arrival time, regardless of
how congested the fabric is — the defining property of an open-loop
load generator (the closed-loop patterns in :mod:`repro.traffic` only
issue a new flow when the previous one completes, which caps the load
they can offer at whatever the fabric sustains).

Per-flow FCTs come out of the factory's existing lifecycle seam: each
completed flow's :class:`~repro.metrics.goodput.FlowRecord` carries
start and completion times, and the factory's ``on_launch`` hook lets
the pattern count what actually started (flows still in flight at the
horizon are reported separately, never silently dropped).

:class:`ElephantBackground` adds the classic background mix: a few
long-lived bulk flows (sized to outlive the run) that keep queues
non-empty while the open-loop mice arrive on top — the regime where
short-flow FCT tails actually differentiate congestion controllers.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.metrics.goodput import FlowRecord
from repro.sim.units import Bytes
from repro.traffic.factory import TransferFactory
from repro.workloads.schedule import FlowArrival


class OpenLoopPattern:
    """Launch every scheduled arrival at its appointed time."""

    def __init__(
        self, factory: TransferFactory, schedule: Sequence[FlowArrival]
    ) -> None:
        self.factory = factory
        self.schedule = list(schedule)
        self.launched = 0
        self.completed_records: List[FlowRecord] = []

    def start(self) -> None:
        """Register one simulator event per arrival (time-relative)."""
        sim = self.factory.network.sim
        now = sim.now
        for arrival in self.schedule:
            delay = arrival.time - now
            if delay < 0:
                raise ValueError(
                    f"arrival at {arrival.time} is in the past (now={now})"
                )
            sim.schedule(delay, self._launch, arrival)

    def _launch(self, arrival: FlowArrival) -> None:
        self.launched += 1
        self.factory.launch(
            arrival.src,
            arrival.dst,
            arrival.size_bytes,
            on_complete=self.completed_records.append,
        )

    @property
    def in_flight(self) -> int:
        """Flows launched but not yet completed."""
        return self.launched - len(self.completed_records)


class ElephantBackground:
    """Long-lived bulk flows pinned for the whole run.

    ``count`` src/dst pairs are drawn from ``hosts`` (distinct sources,
    never self-paired, inter-rack where the topology knows racks) and
    each transfers ``size_bytes`` — callers size this to exceed what a
    1.0-load flow could deliver over the horizon, so every elephant is
    still running when the simulation ends and shows up in the
    factory's unfinished records.
    """

    def __init__(
        self,
        factory: TransferFactory,
        hosts: Sequence[str],
        count: int,
        size_bytes: Bytes,
        rng: Optional[random.Random] = None,
    ) -> None:
        if count < 0:
            raise ValueError(f"elephant count must be >= 0, got {count}")
        if count > len(hosts) // 2:
            raise ValueError(
                f"{count} elephants need {2 * count} hosts, got {len(hosts)}"
            )
        self.factory = factory
        self.hosts = list(hosts)
        self.count = count
        self.size_bytes = int(size_bytes)
        self.rng = rng if rng is not None else random.Random(0)
        self.pairs: List[tuple] = []

    def start(self) -> None:
        """Pick disjoint pairs and launch every elephant at time zero."""
        if self.count == 0:
            return
        chosen = self.rng.sample(self.hosts, 2 * self.count)
        for i in range(self.count):
            src, dst = chosen[2 * i], chosen[2 * i + 1]
            self.pairs.append((src, dst))
            self.factory.launch(src, dst, self.size_bytes)


__all__ = ["OpenLoopPattern", "ElephantBackground"]
