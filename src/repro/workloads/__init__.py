"""Production traffic layer: empirical workloads, open-loop load, incast sweeps.

This package turns the repo's paper-shaped traffic (permutation, fixed
flow sets, one incast table) into the standard DCN evaluation surface:

* :mod:`repro.workloads.cdf` — seeded inverse-CDF flow-size samplers;
  the websearch (DCTCP) and datamining (VL2) empirical CDFs ship as
  data, alongside uniform/lognormal/fixed synthetics;
* :mod:`repro.workloads.arrivals` — Poisson and lognormal open-loop
  arrival processes calibrated to a target load against the topology's
  bisection-derived capacity;
* :mod:`repro.workloads.schedule` — pure, deterministic schedule
  generation (the piece property tests and the future fluid backend
  share);
* :mod:`repro.workloads.openloop` — schedule replay over the existing
  transport seams, plus elephant/mice background mixes;
* :mod:`repro.workloads.partition_aggregate` — parametric incast
  fan-in jobs for goodput-collapse sweeps.

Experiment drivers live in :mod:`repro.experiments.workload_matrix`;
FCT/queue-depth reducers in :mod:`repro.metrics.fct`.
"""

from repro.workloads.arrivals import (
    ARRIVAL_NAMES,
    ArrivalProcess,
    LognormalArrivals,
    PoissonArrivals,
    make_arrivals,
    offered_flow_rate,
    workload_capacity_bps,
)
from repro.workloads.cdf import (
    DATAMINING_POINTS,
    WEBSEARCH_POINTS,
    WORKLOAD_NAMES,
    FixedSizes,
    LognormalSizes,
    SizeCDF,
    SizeSampler,
    UniformSizes,
    make_sampler,
)
from repro.workloads.openloop import ElephantBackground, OpenLoopPattern
from repro.workloads.partition_aggregate import (
    PartitionAggregateJob,
    PartitionAggregatePattern,
)
from repro.workloads.schedule import (
    FlowArrival,
    build_schedule,
    offered_bytes,
)

__all__ = [
    "ARRIVAL_NAMES",
    "ArrivalProcess",
    "LognormalArrivals",
    "PoissonArrivals",
    "make_arrivals",
    "offered_flow_rate",
    "workload_capacity_bps",
    "DATAMINING_POINTS",
    "WEBSEARCH_POINTS",
    "WORKLOAD_NAMES",
    "FixedSizes",
    "LognormalSizes",
    "SizeCDF",
    "SizeSampler",
    "UniformSizes",
    "make_sampler",
    "ElephantBackground",
    "OpenLoopPattern",
    "PartitionAggregateJob",
    "PartitionAggregatePattern",
    "FlowArrival",
    "build_schedule",
    "offered_bytes",
]
