"""Fig. 10 — RTT distributions by flow category.

RTT (of the large flows' subflows, sampled as smoothed RTT while they
run) is the paper's proxy for link buffer occupancy: "packet queuing
delay predominates RTT in DCNs".  The shapes to hold, per pattern:

* XMP and DCTCP keep RTTs low (marking keeps queues near K);
* the subflow count barely affects XMP's RTT;
* LIA's RTTs are several times larger (it fills DropTail queues).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.fattree_eval import FatTreeScenario
from repro.experiments.reporting import format_table
from repro.metrics.stats import summarize
from repro.runner import Campaign, CampaignResult, RunSpec

#: Schemes Fig. 10 plots.
FIG10_SCHEMES: Tuple[Tuple[str, int], ...] = (
    ("dctcp", 1),
    ("lia", 4),
    ("xmp", 2),
    ("xmp", 4),
)

CATEGORIES = ("inter-pod", "inter-rack", "inner-rack")


@dataclass
class Fig10Result:
    """label -> category -> five-number RTT summary (seconds)."""

    pattern: str
    rtt: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    #: Per-cell runner observability (wall/events/cache provenance).
    campaign: Optional[CampaignResult] = None

    def mean_rtt(self, label: str, category: str) -> float:
        summary = self.rtt.get(label, {}).get(category)
        return summary["mean"] if summary else 0.0

    def format(self) -> str:
        headers = ["Scheme"] + [f"{c} p50 (ms)" for c in CATEGORIES]
        rows = []
        for label, by_category in self.rtt.items():
            row = [label]
            for category in CATEGORIES:
                summary = by_category.get(category)
                row.append(f"{summary['p50'] * 1e3:.2f}" if summary else "-")
            rows.append(row)
        return format_table(
            headers, rows, title=f"Fig. 10 ({self.pattern}): RTT by category"
        )


def run_fig10(
    pattern: str,
    base: FatTreeScenario = FatTreeScenario(),
    schemes: Sequence[Tuple[str, int]] = FIG10_SCHEMES,
    jobs: int = 1,
    cache=None,
    use_cache: bool = True,
) -> Fig10Result:
    """Collect per-category RTT distributions for one pattern."""
    grid = [
        replace(base, scheme=scheme, subflows=subflows, pattern=pattern)
        for scheme, subflows in schemes
    ]
    campaign = Campaign(jobs=jobs, cache=cache, use_cache=use_cache)
    outcome = campaign.run(RunSpec("fattree", scenario) for scenario in grid)
    result = Fig10Result(pattern=pattern, campaign=outcome)
    for scenario, run in zip(grid, outcome.values):
        label = scenario.label()
        result.rtt[label] = {
            category: summarize(samples)
            for category, samples in run.rtt_samples.items()
            if samples
        }
    return result


__all__ = ["Fig10Result", "run_fig10", "FIG10_SCHEMES", "CATEGORIES"]
