"""Fig. 11 — link-utilization distributions by layer.

Utilization of a link is bytes carried over capacity x time, grouped by
layer (core / aggregation / rack).  Shapes to hold, per pattern:

* DCTCP's distribution is wide ("fails to achieve a balanced link
  utilization" — single-path flows collide on some links and leave others
  idle);
* XMP/LIA distributions are tighter and higher in the mean; XMP ~10%
  above LIA on average.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.fattree_eval import FatTreeScenario
from repro.experiments.fig10_rtt import FIG10_SCHEMES
from repro.experiments.reporting import format_table
from repro.metrics.stats import mean, summarize
from repro.runner import Campaign, CampaignResult, RunSpec

LAYERS = ("core", "aggregation", "rack")


@dataclass
class Fig11Result:
    """label -> layer -> five-number utilization summary."""

    pattern: str
    utilization: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    #: Per-cell runner observability (wall/events/cache provenance).
    campaign: Optional[CampaignResult] = None

    def spread(self, label: str, layer: str) -> float:
        """max - min utilization: the paper's 'length of the vertical line'."""
        summary = self.utilization[label][layer]
        return summary["max"] - summary["min"]

    def mean_utilization(self, label: str) -> float:
        """Mean of layer means (a scalar for XMP-vs-LIA comparisons)."""
        return mean(
            [self.utilization[label][layer]["mean"] for layer in LAYERS]
        )

    def format(self) -> str:
        headers = ["Scheme"] + [f"{layer} mean/max-min" for layer in LAYERS]
        rows = []
        for label, layers in self.utilization.items():
            row = [label]
            for layer in LAYERS:
                summary = layers[layer]
                row.append(
                    f"{summary['mean']:.2f}/{summary['max'] - summary['min']:.2f}"
                )
            rows.append(row)
        return format_table(
            headers, rows,
            title=f"Fig. 11 ({self.pattern}): link utilization by layer",
        )


def run_fig11(
    pattern: str,
    base: FatTreeScenario = FatTreeScenario(),
    schemes: Sequence[Tuple[str, int]] = FIG10_SCHEMES,
    jobs: int = 1,
    cache=None,
    use_cache: bool = True,
) -> Fig11Result:
    """Collect per-layer utilization distributions for one pattern."""
    grid = [
        replace(base, scheme=scheme, subflows=subflows, pattern=pattern)
        for scheme, subflows in schemes
    ]
    campaign = Campaign(jobs=jobs, cache=cache, use_cache=use_cache)
    outcome = campaign.run(RunSpec("fattree", scenario) for scenario in grid)
    result = Fig11Result(pattern=pattern, campaign=outcome)
    for scenario, run in zip(grid, outcome.values):
        label = scenario.label()
        result.utilization[label] = {
            layer: summarize(run.utilization_values(layer)) for layer in LAYERS
        }
    return result


__all__ = ["Fig11Result", "run_fig11", "LAYERS"]
