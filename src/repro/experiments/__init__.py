"""Experiment drivers: one module per paper figure/table.

Small-topology experiments (testbed / torus):

* :mod:`repro.experiments.fig1_convergence` — Fig. 1
* :mod:`repro.experiments.fig4_traffic_shifting` — Fig. 4
* :mod:`repro.experiments.fig6_fairness` — Fig. 6
* :mod:`repro.experiments.fig7_rate_compensation` — Fig. 7

Fat-tree evaluation (one shared driver, cached per scenario):

* :mod:`repro.experiments.fattree_eval` — the §5.2 simulation engine
* :mod:`repro.experiments.table1_goodput`, :mod:`...fig8_goodput_dist`,
  :mod:`...table2_coexistence`, :mod:`...fig9_jct_cdf`,
  :mod:`...table3_jct`, :mod:`...fig10_rtt`, :mod:`...fig11_utilization`

Every driver routes its simulations through :mod:`repro.runner` — one
:class:`~repro.runner.RunSpec` per cell, executed by a
:class:`~repro.runner.Campaign` with two-tier caching and optional
process parallelism (grid drivers take ``jobs=N``).  Every driver also
accepts a ``time_scale`` or duration knob so tests can run seconds-long
versions while benches run the paper-scaled ones; see DESIGN.md §4 for
the scaling rules and §7 for the runner contract.
"""

from repro.experiments import reporting

__all__ = ["reporting"]
