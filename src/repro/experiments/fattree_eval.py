"""The §5.2 fat-tree evaluation engine.

One :class:`FatTreeScenario` describes a (scheme, pattern) cell of the
paper's evaluation; :func:`run_fattree` builds the fat tree, wires the
pattern, runs it for ``duration`` simulated seconds and returns a
:class:`FatTreeResult` carrying everything Tables 1-3 and Figs. 8-11
extract: per-flow records, JCTs, RTT samples per category, and per-link
byte counters.

Runs are cached through :mod:`repro.runner`'s two-tier cache (bounded
in-process LRU plus optional content-addressed disk tier), so the seven
benchmark modules that share runs (Table 1 and Figs. 8/10/11 use the same
simulations) only pay for each simulation once — and a warm disk cache
survives across processes.

Scaling note (DESIGN.md §4): defaults are k=4 and MB-scale flow sizes;
links, delays, K, β, queue sizes, small-flow sizes and RTOmin are the
paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.collector import RttSampler
from repro.metrics.goodput import FlowRecord
from repro.sim.random import RandomStreams
from repro.topology.fattree import build_fattree
from repro.traffic.factory import TransferFactory
from repro.traffic.incast import IncastPattern
from repro.traffic.permutation import PermutationPattern
from repro.traffic.random_pattern import RandomPattern

PATTERNS = ("permutation", "random", "incast")


@dataclass(frozen=True)
class FatTreeScenario:
    """One cell of the paper's fat-tree evaluation."""

    scheme: str = "xmp"
    subflows: int = 2
    pattern: str = "permutation"
    k: int = 4
    beta: float = 4.0
    marking_threshold: int = 10
    queue_capacity: int = 100
    duration: float = 1.0
    seed: int = 1
    rto_min: float = 0.200
    # Large-flow sizes (scaled; paper: 64-512 MB uniform / Pareto mean 192 MB).
    perm_size_min: int = 2_000_000
    perm_size_max: int = 16_000_000
    random_mean: float = 6_000_000.0
    random_max: float = 24_000_000.0
    # Coexistence (Table 2): second scheme for half the hosts, or None.
    coexist_scheme: Optional[str] = None
    coexist_subflows: int = 2
    rtt_sample_interval: float = 0.005

    def label(self) -> str:
        base = self.scheme.upper()
        if self.subflows > 1:
            base = f"{base}-{self.subflows}"
        return base


@dataclass
class FatTreeResult:
    """Everything the table/figure views need from one simulation."""

    scenario: FatTreeScenario
    #: Completed large-flow records, keyed by factory label (e.g. "XMP-2").
    records: Dict[str, List[FlowRecord]] = field(default_factory=dict)
    #: Records of large flows still running at the end (rate measured).
    unfinished: Dict[str, List[FlowRecord]] = field(default_factory=dict)
    #: Incast job completion times, seconds.
    jcts: List[float] = field(default_factory=list)
    #: Ages of jobs still running when the simulation ended.
    jct_unfinished_ages: List[float] = field(default_factory=list)
    jobs_started: int = 0
    #: srtt samples per flow category.
    rtt_samples: Dict[str, List[float]] = field(default_factory=dict)
    #: (link name, layer, utilization over the run).
    link_utilization: List[tuple] = field(default_factory=list)
    duration: float = 0.0
    total_marked: int = 0
    total_dropped: int = 0
    events: int = 0

    def all_records(self, label: Optional[str] = None) -> List[FlowRecord]:
        """Completed + unfinished records, optionally for one label."""
        labels = [label] if label is not None else list(self.records)
        out: List[FlowRecord] = []
        for key in labels:
            out.extend(self.records.get(key, []))
            out.extend(self.unfinished.get(key, []))
        return out

    def mean_goodput_bps(self, label: Optional[str] = None) -> float:
        """Average goodput over all (incl. unfinished) large flows."""
        records = self.all_records(label)
        if not records:
            return 0.0
        return sum(r.goodput_bps(self.duration) for r in records) / len(records)

    def utilization_values(self, layer: str) -> List[float]:
        return [u for _, l, u in self.link_utilization if l == layer]


def clear_cache() -> None:
    """Drop memoized runs (tests use this to force fresh simulations).

    Delegates to the runner cache's in-process tier; an attached disk
    tier is deliberately left alone (it is content-addressed and safe).
    """
    from repro.runner.cache import default_cache

    default_cache().clear_memory()


def run_fattree(
    scenario: FatTreeScenario, use_cache: bool = True, cache=None
) -> FatTreeResult:
    """Run (or fetch from the runner cache) one fat-tree scenario."""
    from repro.runner import RunSpec, run_spec

    return run_spec(
        RunSpec("fattree", scenario), cache=cache, use_cache=use_cache
    ).value


def _simulate(scenario: FatTreeScenario) -> FatTreeResult:
    if scenario.pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {scenario.pattern!r}")
    streams = RandomStreams(scenario.seed)
    net = build_fattree(
        k=scenario.k,
        queue_capacity=scenario.queue_capacity,
        marking_threshold=scenario.marking_threshold,
    )
    hosts = list(net.host_names)
    rtt_sampler = RttSampler(
        net.sim, scenario.rtt_sample_interval, until=scenario.duration
    )
    rtt_sampler.start(scenario.rtt_sample_interval)

    main_factory = TransferFactory(
        net,
        scenario.scheme,
        subflow_count=scenario.subflows,
        beta=scenario.beta,
        rto_min=scenario.rto_min,
        rng=streams.stream("paths-main"),
        rtt_sampler=rtt_sampler,
        label=scenario.label(),
    )
    factories = [main_factory]
    incast_pattern: Optional[IncastPattern] = None

    if scenario.coexist_scheme is not None:
        other_label = scenario.coexist_scheme.upper()
        if scenario.coexist_subflows > 1:
            other_label = f"{other_label}-{scenario.coexist_subflows}"
        other_factory = TransferFactory(
            net,
            scenario.coexist_scheme,
            subflow_count=scenario.coexist_subflows,
            beta=scenario.beta,
            rto_min=scenario.rto_min,
            rng=streams.stream("paths-coexist"),
            rtt_sampler=rtt_sampler,
            label=other_label,
        )
        factories.append(other_factory)
        # Interleave the halves: contiguous halves would land each scheme
        # in its own pods, whose traffic never shares a queue in a fat
        # tree — no coexistence at all.  Destinations span all hosts.
        groups = [(main_factory, hosts[0::2]), (other_factory, hosts[1::2])]
    else:
        groups = [(main_factory, hosts)]

    if scenario.pattern == "permutation":
        for factory, group_hosts in groups:
            pattern = PermutationPattern(
                factory,
                group_hosts,
                size_min_bytes=scenario.perm_size_min,
                size_max_bytes=scenario.perm_size_max,
                rng=streams.stream(f"perm-{factory.label}"),
            )
            pattern.start()
    elif scenario.pattern == "random":
        for factory, group_hosts in groups:
            pattern = RandomPattern(
                factory,
                group_hosts,
                mean_bytes=scenario.random_mean,
                max_bytes=scenario.random_max,
                rng=streams.stream(f"rand-{factory.label}"),
                destinations=hosts,
            )
            pattern.start()
    else:  # incast
        # Small flows are plain TCP (paper: "all the small flows use TCP").
        small_factory = TransferFactory(
            net,
            "tcp",
            subflow_count=1,
            rto_min=scenario.rto_min,
            rng=streams.stream("paths-small"),
            label="TCP-SMALL",
        )
        incast_pattern = IncastPattern(
            small_factory, hosts, rng=streams.stream("incast")
        )
        incast_pattern.start()
        # Background large flows follow the Random pattern, source and
        # destination never in the same rack (paper footnote 8).
        for factory, group_hosts in groups:
            background = RandomPattern(
                factory,
                group_hosts,
                mean_bytes=scenario.random_mean,
                max_bytes=scenario.random_max,
                rng=streams.stream(f"bg-{factory.label}"),
                exclude_same_rack=True,
            )
            background.start()

    net.sim.run(until=scenario.duration)

    result = FatTreeResult(scenario=scenario, duration=scenario.duration)
    for factory in factories:
        result.records[factory.label] = list(factory.records)
        result.unfinished[factory.label] = factory.unfinished_records(
            scenario.duration
        )
    if incast_pattern is not None:
        result.jcts = incast_pattern.completion_times()
        result.jct_unfinished_ages = incast_pattern.unfinished_ages(
            scenario.duration
        )
        result.jobs_started = incast_pattern.jobs_started
    result.rtt_samples = {
        category: list(samples)
        for category, samples in rtt_sampler.samples.items()
    }
    result.link_utilization = [
        (link.name, link.layer, link.utilization(scenario.duration))
        for link in net.links
    ]
    result.total_marked = net.total_marked()
    result.total_dropped = net.total_dropped()
    result.events = net.sim.events_processed
    return result


__all__ = [
    "FatTreeScenario",
    "FatTreeResult",
    "run_fattree",
    "clear_cache",
    "PATTERNS",
]
