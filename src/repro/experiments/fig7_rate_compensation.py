"""Fig. 7 — rate compensation on the Fig. 5 torus.

Five XMP flows, each with two subflows over neighbouring bottlenecks of
the ring (capacities 0.8/1.2/2/1.5/0.5 Gbps, RTT 350 µs), start 5 s
apart.  From 25 s, four background flows join L3 one by one (5 s apart)
and leave one by one from 45 s; at 60 s link L3 is closed outright.  The
run ends at 70 s.

Expected shape (the "attenuated Dominos"): as L3 congests, Flow 2-2 and
Flow 3-1 sink while their siblings 2-1 and 3-2 rise; that in turn presses
Flow 1-2 and Flow 4-1 down a little; Flows 1-1, 4-2, 5-* barely move.
After 45 s everything mirrors back; at 60 s the L3 subflows collapse to
zero and their siblings jump.

The paper runs (β, K) ∈ {(4, 20), (5, 15), (6, 10)} — K from Eq. 1 with
the largest-BDP path — and plots 5 s-averaged subflow rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.metrics.collector import RateSampler
from repro.mptcp.connection import MptcpConnection
from repro.topology.torus import DEFAULT_CAPACITIES, build_torus


@dataclass(frozen=True)
class Fig7Config:
    beta: float = 4.0
    marking_threshold: int = 20
    scheme: str = "xmp"
    time_scale: float = 1.0  # 1.0 = the paper's 70 s experiment
    rtt: float = 350e-6
    queue_capacity: int = 100
    num_background: int = 4
    sample_interval: float = 5.0  # the paper averages per 5 s interval


@dataclass
class Fig7Result:
    config: Fig7Config
    times: List[float] = field(default_factory=list)
    #: "flow{i}-{j}" for the five main flows, "bg{b}" for background.
    rates: Dict[str, List[float]] = field(default_factory=dict)
    capacities: List[float] = field(default_factory=list)
    #: Simulator events processed (runner observability).
    events: int = 0

    def mean_rate(self, name: str, start: float, end: float) -> float:
        values = [
            rate for time, rate in zip(self.times, self.rates[name])
            if start <= time <= end
        ]
        return sum(values) / len(values) if values else 0.0

    def normalized_mean(self, name: str, start: float, end: float) -> float:
        """Mean rate over a window, normalized like the paper (1 Gbps)."""
        return self.mean_rate(name, start, end) / 1e9


def run_fig7(
    config: Fig7Config, use_cache: bool = False, cache=None
) -> Fig7Result:
    """Run the Fig. 7 experiment (through the campaign runner)."""
    from repro.runner import RunSpec, run_spec

    return run_spec(RunSpec("fig7", config), cache=cache, use_cache=use_cache).value


def _simulate(config: Fig7Config) -> Fig7Result:
    """Simulate Fig. 7; returns 5 s-averaged subflow rates."""
    s = config.time_scale
    net = build_torus(
        capacities=DEFAULT_CAPACITIES,
        rtt=config.rtt,
        queue_capacity=config.queue_capacity,
        marking_threshold=config.marking_threshold,
        num_background=config.num_background,
    )
    total = 70.0 * s
    sampler = RateSampler(net.sim, {}, interval=config.sample_interval * s,
                          until=total)

    for i in range(1, 6):
        connection = MptcpConnection(
            net, f"S{i}", f"D{i}", net.flow_paths(i),
            scheme=config.scheme, beta=config.beta,
        )
        for j, subflow in enumerate(connection.subflows, start=1):
            sampler.add_sender(f"flow{i}-{j}", subflow.sender)
        net.sim.schedule((i - 1) * 5.0 * s, connection.start)

    for b in range(1, config.num_background + 1):
        background = MptcpConnection(
            net, f"BG{b}", f"BGD{b}", [net.background_path(b)],
            scheme=config.scheme, beta=config.beta,
        )
        sampler.add_sender(f"bg{b}", background.subflows[0].sender)
        net.sim.schedule((25.0 + (b - 1) * 5.0) * s, background.start)
        net.sim.schedule((45.0 + (b - 1) * 5.0) * s, background.stop)

    l3 = net.bottleneck(3)
    net.sim.schedule(60.0 * s, net.set_link_pair_down, l3)

    sampler.start(config.sample_interval * s)
    net.sim.run(until=total)
    return Fig7Result(
        config=config,
        times=sampler.times,
        rates=sampler.rates,
        capacities=list(DEFAULT_CAPACITIES),
        events=net.sim.events_processed,
    )


__all__ = ["Fig7Config", "Fig7Result", "run_fig7"]
