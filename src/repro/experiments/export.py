"""Serialize experiment results to JSON/CSV artifact directories.

``pytest benchmarks/`` prints and stores human-readable tables; this
module produces the *machine-readable* counterparts so results can be
plotted or diffed outside the repo:

* :func:`export_fattree_result` — one fat-tree run: per-flow records,
  JCTs, RTT samples and per-link utilization as CSV plus a summary JSON.
* :func:`export_rate_result` — any rate-versus-time experiment result
  (Figs. 1/4/6/7) as a CSV of its series plus a JSON of its config.
* :func:`export_campaign_metrics` — a campaign's per-cell runner metrics
  (wall-clock, events, events/sec, cache provenance) as ``cells.csv``.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import pathlib
from typing import Union

from repro.experiments.fattree_eval import FatTreeResult
from repro.metrics.trace import rate_series_to_csv

PathLike = Union[str, pathlib.Path]


def _ensure_dir(path: PathLike) -> pathlib.Path:
    directory = pathlib.Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def export_fattree_result(result: FatTreeResult, directory: PathLike) -> pathlib.Path:
    """Write one fat-tree run's raw data into ``directory``.

    Files produced: ``summary.json``, ``flows.csv``, ``jct.csv``,
    ``rtt_samples.csv``, ``links.csv``.
    """
    out = _ensure_dir(directory)

    summary = {
        "scenario": dataclasses.asdict(result.scenario),
        "duration": result.duration,
        "mean_goodput_bps": result.mean_goodput_bps(),
        "jobs_started": result.jobs_started,
        "jobs_completed": len(result.jcts),
        "total_marked": result.total_marked,
        "total_dropped": result.total_dropped,
        "events": result.events,
    }
    (out / "summary.json").write_text(json.dumps(summary, indent=2))

    with open(out / "flows.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["scheme", "src", "dst", "category", "size_bytes",
             "start_time", "complete_time", "delivered_bytes", "goodput_bps"]
        )
        for label in result.records:
            for record in result.records[label] + result.unfinished.get(label, []):
                writer.writerow(
                    [
                        record.scheme,
                        record.src,
                        record.dst,
                        record.category,
                        record.size_bytes,
                        record.start_time,
                        record.complete_time if record.complete_time is not None else "",
                        record.delivered_bytes,
                        record.goodput_bps(result.duration),
                    ]
                )

    with open(out / "jct.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["jct_seconds"])
        for jct in result.jcts:
            writer.writerow([jct])

    with open(out / "rtt_samples.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["category", "srtt_seconds"])
        for category, samples in result.rtt_samples.items():
            for sample in samples:
                writer.writerow([category, sample])

    with open(out / "links.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["link", "layer", "utilization"])
        for name, layer, utilization in result.link_utilization:
            writer.writerow([name, layer, utilization])

    return out


def export_rate_result(result, directory: PathLike, name: str = "rates") -> pathlib.Path:
    """Write a rate-series experiment result (Fig. 1/4/6/7 style).

    ``result`` must expose ``times``, ``rates`` and ``config``; produces
    ``<name>.csv`` plus ``config.json``.
    """
    out = _ensure_dir(directory)
    (out / f"{name}.csv").write_text(
        rate_series_to_csv(result.times, result.rates)
    )
    (out / "config.json").write_text(
        json.dumps(dataclasses.asdict(result.config), indent=2)
    )
    return out


def export_campaign_metrics(campaign, directory: PathLike) -> pathlib.Path:
    """Write a campaign's per-cell metrics as ``<directory>/cells.csv``.

    ``campaign`` is a :class:`repro.runner.CampaignResult` (or anything
    iterable over :class:`repro.runner.RunResult`).
    """
    out = _ensure_dir(directory)
    with open(out / "cells.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["cell", "source", "wall_seconds", "events", "events_per_sec"])
        for result in campaign:
            metrics = result.metrics
            writer.writerow(
                [
                    result.spec.label(),
                    metrics.source,
                    metrics.wall_time_s,
                    metrics.events,
                    metrics.events_per_sec,
                ]
            )
    return out


__all__ = ["export_fattree_result", "export_rate_result", "export_campaign_metrics"]
