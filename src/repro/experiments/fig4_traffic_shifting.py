"""Fig. 4 — traffic shifting on the Fig. 3(a) testbed.

Flows 1, 2, 3 start at 0 s; Flow 2 has one subflow over each 300 Mbps
bottleneck.  A background flow runs on DN1 from 10 s to 20 s and another
on DN2 from 20 s to 30 s; the experiment runs to 40 s.  XMP should shift
Flow 2's traffic away from whichever bottleneck carries the background
flow, with a rate-compensating rise on the sibling subflow; the paper
contrasts β = 4 (clean shifting) with β = 6 (sluggish, may stall under
global synchronization).

All times scale with ``time_scale`` so tests can run compressed versions;
the bottleneck parameters (300 Mbps, RTT 1.8 ms, K = 15, queue 100) stay
at the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.metrics.collector import RateSampler
from repro.mptcp.connection import MptcpConnection
from repro.topology.testbed import build_shifting_testbed


@dataclass(frozen=True)
class Fig4Config:
    beta: float = 4.0
    scheme: str = "xmp"
    time_scale: float = 1.0  # 1.0 = the paper's 40 s experiment
    bottleneck_rate_bps: float = 300e6
    rtt: float = 1.8e-3
    marking_threshold: int = 15
    queue_capacity: int = 100
    sample_interval: float = 0.25


@dataclass
class Fig4Result:
    config: Fig4Config
    times: List[float] = field(default_factory=list)
    rates: Dict[str, List[float]] = field(default_factory=dict)
    #: Simulator events processed (runner observability).
    events: int = 0

    def normalized(self, name: str) -> List[float]:
        cap = self.config.bottleneck_rate_bps
        return [rate / cap for rate in self.rates[name]]

    def mean_normalized(self, name: str, start: float, end: float) -> float:
        cap = self.config.bottleneck_rate_bps
        values = [
            rate / cap
            for time, rate in zip(self.times, self.rates[name])
            if start <= time <= end
        ]
        return sum(values) / len(values) if values else 0.0

    def phases(self) -> Dict[str, Tuple[float, float]]:
        """The experiment's windows in (scaled) absolute time."""
        s = self.config.time_scale
        return {
            "baseline": (4.0 * s, 10.0 * s),
            "bg_on_dn1": (12.0 * s, 20.0 * s),
            "bg_on_dn2": (22.0 * s, 30.0 * s),
            "recovered": (32.0 * s, 40.0 * s),
        }


def run_fig4(
    config: Fig4Config, use_cache: bool = False, cache=None
) -> Fig4Result:
    """Run the Fig. 4 experiment (through the campaign runner)."""
    from repro.runner import RunSpec, run_spec

    return run_spec(RunSpec("fig4", config), cache=cache, use_cache=use_cache).value


def _simulate(config: Fig4Config) -> Fig4Result:
    """Simulate Fig. 4 and return Flow 2's subflow rate series."""
    s = config.time_scale
    net = build_shifting_testbed(
        bottleneck_rate_bps=config.bottleneck_rate_bps,
        rtt=config.rtt,
        queue_capacity=config.queue_capacity,
        marking_threshold=config.marking_threshold,
    )
    flow1 = MptcpConnection(net, "S1", "D1", [net.path_flow1()],
                            scheme=config.scheme, beta=config.beta)
    flow3 = MptcpConnection(net, "S3", "D3", [net.path_flow3()],
                            scheme=config.scheme, beta=config.beta)
    flow2 = MptcpConnection(net, "S2", "D2", net.paths_flow2(),
                            scheme=config.scheme, beta=config.beta)
    bg1 = MptcpConnection(net, "BG1", "BGD1", [net.path_background(1)],
                          scheme=config.scheme, beta=config.beta)
    bg2 = MptcpConnection(net, "BG2", "BGD2", [net.path_background(2)],
                          scheme=config.scheme, beta=config.beta)

    for connection in (flow1, flow2, flow3):
        net.sim.schedule(0.0, connection.start)
    net.sim.schedule(10.0 * s, bg1.start)
    net.sim.schedule(20.0 * s, bg1.stop)
    net.sim.schedule(20.0 * s, bg2.start)
    net.sim.schedule(30.0 * s, bg2.stop)

    total = 40.0 * s
    sampler = RateSampler(
        net.sim,
        {
            "flow2-1": flow2.subflows[0].sender,
            "flow2-2": flow2.subflows[1].sender,
            "flow1": flow1.subflows[0].sender,
            "flow3": flow3.subflows[0].sender,
        },
        interval=config.sample_interval * s,
        until=total,
    )
    sampler.start(config.sample_interval * s)
    net.sim.run(until=total)
    return Fig4Result(
        config=config,
        times=sampler.times,
        rates=sampler.rates,
        events=net.sim.events_processed,
    )


__all__ = ["Fig4Config", "Fig4Result", "run_fig4"]
