"""Table 3 — average job completion time and deadline misses.

Thin view over :mod:`repro.experiments.fig9_jct_cdf`: the same Incast
simulations produce both the Fig. 9 CDF and this table, so the module
simply re-exports the driver under the table's name (and the shared
:mod:`repro.runner` cache makes the second consumer free; ``jobs``,
``cache`` and ``use_cache`` kwargs pass straight through).
"""

from __future__ import annotations

from repro.experiments.fig9_jct_cdf import (
    DEADLINE,
    PAPER_TABLE3,
    JctResult,
    run_jct,
)

run_table3 = run_jct

__all__ = ["run_table3", "JctResult", "PAPER_TABLE3", "DEADLINE"]
