"""Fig. 6 — fairness of XMP regardless of subflow count (Fig. 3(b) testbed).

Four flows share one 300 Mbps bottleneck.  Flow 1 establishes subflows at
0 s / 5 s / 15 s; Flow 2 establishes two subflows at 20 s; Flows 3 and 4
are single-path, starting at 0 s and 10 s and both stopping at 25 s; the
run ends at 30 s.  With β = 4 the four flows share the link equally
irrespective of subflow count (every flow ≈ 1/4 in 20-25 s); with β = 6
fairness degrades.

All subflows traverse the *same* bottleneck (that is the point: the
coupling must prevent a 3-subflow flow from taking 3 shares).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.metrics.collector import RateSampler
from repro.metrics.fairness import jain_index
from repro.mptcp.connection import MptcpConnection
from repro.topology.bottleneck import build_single_bottleneck


@dataclass(frozen=True)
class Fig6Config:
    beta: float = 4.0
    scheme: str = "xmp"
    time_scale: float = 1.0  # 1.0 = the paper's 30 s experiment
    bottleneck_rate_bps: float = 300e6
    rtt: float = 1.8e-3
    marking_threshold: int = 15
    queue_capacity: int = 100
    sample_interval: float = 0.25


@dataclass
class Fig6Result:
    config: Fig6Config
    times: List[float] = field(default_factory=list)
    #: Keyed "flow{i}-{j}" per subflow, e.g. "flow1-2".
    rates: Dict[str, List[float]] = field(default_factory=dict)
    #: Simulator events processed (runner observability).
    events: int = 0

    def flow_rate_between(self, flow: int, start: float, end: float) -> float:
        """Mean total rate of one flow (all its subflows) over a window."""
        total = 0.0
        count = 0
        for name, series in self.rates.items():
            if not name.startswith(f"flow{flow}-"):
                continue
            window = [
                rate for time, rate in zip(self.times, series) if start <= time <= end
            ]
            if window:
                total += sum(window) / len(window)
                count += 1
        return total if count else 0.0

    def fairness_all_flows(self) -> float:
        """Jain's index over the four flow rates in the all-active window."""
        s = self.config.time_scale
        start, end = 21.0 * s, 25.0 * s
        rates = [self.flow_rate_between(flow, start, end) for flow in (1, 2, 3, 4)]
        return jain_index(rates)


def run_fig6(
    config: Fig6Config, use_cache: bool = False, cache=None
) -> Fig6Result:
    """Run the Fig. 6 experiment (through the campaign runner)."""
    from repro.runner import RunSpec, run_spec

    return run_spec(RunSpec("fig6", config), cache=cache, use_cache=use_cache).value


def _simulate(config: Fig6Config) -> Fig6Result:
    """Simulate Fig. 6; returns per-subflow rate series."""
    s = config.time_scale
    net = build_single_bottleneck(
        num_pairs=4,
        bottleneck_rate_bps=config.bottleneck_rate_bps,
        rtt=config.rtt,
        queue_capacity=config.queue_capacity,
        marking_threshold=config.marking_threshold,
    )
    sampler = RateSampler(net.sim, {}, interval=config.sample_interval * s,
                          until=30.0 * s)

    def make_flow(index: int, subflow_count: int) -> MptcpConnection:
        path = net.flow_path(index - 1)
        connection = MptcpConnection(
            net, f"S{index-1}", f"D{index-1}", [path] * subflow_count,
            scheme=config.scheme, beta=config.beta,
        )
        for j, subflow in enumerate(connection.subflows, start=1):
            sampler.add_sender(f"flow{index}-{j}", subflow.sender)
        return connection

    flow1 = make_flow(1, 1)  # grows to 3 subflows
    flow2 = make_flow(2, 2)
    flow3 = make_flow(3, 1)
    flow4 = make_flow(4, 1)

    path1 = net.flow_path(0)

    def add_flow1_subflow(label: str) -> None:
        subflow = flow1.add_subflow(path1, start=True)
        sampler.add_sender(label, subflow.sender)

    net.sim.schedule(0.0, flow1.start)
    net.sim.schedule(5.0 * s, add_flow1_subflow, "flow1-2")
    net.sim.schedule(15.0 * s, add_flow1_subflow, "flow1-3")
    net.sim.schedule(20.0 * s, flow2.start)
    net.sim.schedule(0.0, flow3.start)
    net.sim.schedule(10.0 * s, flow4.start)
    net.sim.schedule(25.0 * s, flow3.stop)
    net.sim.schedule(25.0 * s, flow4.stop)

    sampler.start(config.sample_interval * s)
    net.sim.run(until=30.0 * s)
    return Fig6Result(
        config=config,
        times=sampler.times,
        rates=sampler.rates,
        events=net.sim.events_processed,
    )


__all__ = ["Fig6Config", "Fig6Result", "run_fig6"]
