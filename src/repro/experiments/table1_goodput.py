"""Table 1 — average goodput (Mbps) per scheme per traffic pattern.

Paper's numbers (k=8, 600 GB, Mbps)::

                Permutation   Random   Incast
    DCTCP          513.6       440.5    423.7
    LIA-2          400.8       310.0    302.7
    LIA-4          627.3       434.5    425.4
    XMP-2          644.3       497.9    483.7
    XMP-4          735.6       542.9    535.7

The scaled-down reproduction targets the *shape*: XMP-2 > DCTCP and
XMP-2 > LIA-2 everywhere; XMP-4 only modestly above XMP-2 (~10% in the
paper) while LIA-4 gains a lot over LIA-2 (>40%).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.fattree_eval import PATTERNS, FatTreeScenario
from repro.experiments.reporting import format_table
from repro.runner import Campaign, CampaignResult, RunSpec

#: The paper's Table 1 scheme column, as (scheme, subflow count).
TABLE1_SCHEMES: Tuple[Tuple[str, int], ...] = (
    ("dctcp", 1),
    ("lia", 2),
    ("lia", 4),
    ("xmp", 2),
    ("xmp", 4),
)

#: Paper's Table 1, for EXPERIMENTS.md comparisons (Mbps).
PAPER_TABLE1 = {
    "DCTCP": {"permutation": 513.6, "random": 440.5, "incast": 423.7},
    "LIA-2": {"permutation": 400.8, "random": 310.0, "incast": 302.7},
    "LIA-4": {"permutation": 627.3, "random": 434.5, "incast": 425.4},
    "XMP-2": {"permutation": 644.3, "random": 497.9, "incast": 483.7},
    "XMP-4": {"permutation": 735.6, "random": 542.9, "incast": 535.7},
}


@dataclass
class Table1Result:
    """Mean goodput per (scheme label, pattern), Mbps."""

    goodput_mbps: Dict[str, Dict[str, float]] = field(default_factory=dict)
    patterns: Sequence[str] = PATTERNS
    #: Per-cell runner observability (wall/events/cache provenance).
    campaign: Optional[CampaignResult] = None

    def row(self, label: str) -> List[float]:
        return [self.goodput_mbps[label][p] for p in self.patterns]

    def format(self) -> str:
        headers = ["Scheme"] + [p.capitalize() for p in self.patterns]
        rows = [
            [label] + [f"{value:.1f}" for value in self.row(label)]
            for label in self.goodput_mbps
        ]
        return format_table(headers, rows, title="Table 1: Average Goodput (Mbps)")


def scenarios_for(
    base: FatTreeScenario,
    schemes: Sequence[Tuple[str, int]] = TABLE1_SCHEMES,
    patterns: Sequence[str] = PATTERNS,
) -> List[FatTreeScenario]:
    """The scenario grid shared by Table 1 and Figs. 8/10/11."""
    return [
        replace(base, scheme=scheme, subflows=subflows, pattern=pattern)
        for scheme, subflows in schemes
        for pattern in patterns
    ]


def run_table1(
    base: FatTreeScenario = FatTreeScenario(),
    schemes: Sequence[Tuple[str, int]] = TABLE1_SCHEMES,
    patterns: Sequence[str] = PATTERNS,
    jobs: int = 1,
    cache=None,
    use_cache: bool = True,
) -> Table1Result:
    """Run every (scheme, pattern) cell and aggregate mean goodput."""
    grid = [
        replace(base, scheme=scheme, subflows=subflows, pattern=pattern)
        for scheme, subflows in schemes
        for pattern in patterns
    ]
    campaign = Campaign(jobs=jobs, cache=cache, use_cache=use_cache)
    outcome = campaign.run(RunSpec("fattree", scenario) for scenario in grid)
    result = Table1Result(patterns=list(patterns), campaign=outcome)
    for scenario, run in zip(grid, outcome.values):
        label = scenario.label()
        result.goodput_mbps.setdefault(label, {})[scenario.pattern] = (
            run.mean_goodput_bps(label) / 1e6
        )
    return result


__all__ = [
    "TABLE1_SCHEMES",
    "PAPER_TABLE1",
    "Table1Result",
    "scenarios_for",
    "run_table1",
]
