"""Fig. 8 — goodput distributions.

(a)/(b): CDFs of per-flow goodput (normalized to 1 Gbps) under the
Permutation and Incast patterns for DCTCP / LIA-2 / LIA-4 / XMP-2 / XMP-4.
(c)/(d): per-category (inter-pod / inter-rack / inner-rack) five-number
summaries for DCTCP / LIA-4 / XMP-2 / XMP-4.

Key paper shapes: DCTCP wins inner-rack but collapses across more hops;
XMP's multipath compensates; LIA's inner-rack goodput is ruined by the
200 ms loss-recovery floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.fattree_eval import FatTreeScenario
from repro.experiments.table1_goodput import TABLE1_SCHEMES
from repro.metrics.stats import cdf_points, summarize
from repro.runner import Campaign, CampaignResult, RunSpec

#: Schemes shown in the per-category panels (c)/(d).
CATEGORY_SCHEMES: Tuple[Tuple[str, int], ...] = (
    ("dctcp", 1),
    ("lia", 4),
    ("xmp", 2),
    ("xmp", 4),
)

LINK_RATE_BPS = 1e9


@dataclass
class Fig8Result:
    """CDFs and per-category summaries for one pattern."""

    pattern: str
    #: label -> [(normalized goodput, cumulative fraction)]
    cdfs: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    #: label -> category -> five-number summary of normalized goodput
    by_category: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    #: Per-cell runner observability (wall/events/cache provenance).
    campaign: Optional[CampaignResult] = None

    def median(self, label: str) -> float:
        points = self.cdfs[label]
        if not points:
            return 0.0
        values = [value for value, _ in points]
        values.sort()
        return values[len(values) // 2]


def run_fig8(
    pattern: str,
    base: FatTreeScenario = FatTreeScenario(),
    schemes: Sequence[Tuple[str, int]] = TABLE1_SCHEMES,
    jobs: int = 1,
    cache=None,
    use_cache: bool = True,
) -> Fig8Result:
    """Compute Fig. 8's distributions for one traffic pattern."""
    grid = [
        replace(base, scheme=scheme, subflows=subflows, pattern=pattern)
        for scheme, subflows in schemes
    ]
    campaign = Campaign(jobs=jobs, cache=cache, use_cache=use_cache)
    outcome = campaign.run(RunSpec("fattree", scenario) for scenario in grid)
    result = Fig8Result(pattern=pattern, campaign=outcome)
    for (scheme, subflows), scenario, run in zip(schemes, grid, outcome.values):
        label = scenario.label()
        records = run.all_records(label)
        normalized = [
            record.goodput_bps(run.duration) / LINK_RATE_BPS for record in records
        ]
        result.cdfs[label] = cdf_points(normalized) if normalized else []
        if (scheme, subflows) in CATEGORY_SCHEMES:
            grouped: Dict[str, List[float]] = {}
            for record in records:
                grouped.setdefault(record.category, []).append(
                    record.goodput_bps(run.duration) / LINK_RATE_BPS
                )
            result.by_category[label] = {
                category: summarize(values) for category, values in grouped.items()
            }
    return result


__all__ = ["Fig8Result", "run_fig8", "CATEGORY_SCHEMES", "LINK_RATE_BPS"]
