"""The workload evaluation matrix: empirical loads and incast fan-in sweeps.

Two new experiment kinds extend the paper-shaped evaluation
(:mod:`repro.experiments.fattree_eval`) to production-style traffic:

* ``workload`` — one (scheme, workload, load) cell: an open-loop
  Poisson/lognormal schedule of websearch/datamining/synthetic-sized
  flows over the fat tree, optionally on top of long-lived elephants.
  The result carries per-flow FCT records and sampled queue depths.
* ``incast_sweep`` — one (scheme, fan-in) cell: partition-aggregate
  rounds whose responses run the scheme under test, measuring JCTs and
  the goodput-collapse ratio.

:func:`run_workload_matrix` fans schemes x loads (the standard 0.1-0.9
sweep) through the campaign runner; :func:`run_incast_sweep` does the
same for schemes x fan-ins.  Both inherit the runner's guarantees —
content-addressed caching, deterministic jobs=N merge, telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.reporting import format_table
from repro.metrics.collector import QueueMonitor
from repro.metrics.fct import (
    DEFAULT_BIN_EDGES,
    DEFAULT_BIN_LABELS,
    check_fct_invariants,
    fct_by_size_bin,
    fct_summary,
    goodput_collapse_ratio,
    queue_depth_p99,
)
from repro.metrics.goodput import FlowRecord
from repro.runner import Campaign, CampaignResult, RunSpec
from repro.sim.random import RandomStreams
from repro.topology.fattree import build_fattree
from repro.traffic.factory import TransferFactory
from repro.workloads.arrivals import make_arrivals, offered_flow_rate, workload_capacity_bps
from repro.workloads.cdf import make_sampler
from repro.workloads.openloop import ElephantBackground, OpenLoopPattern
from repro.workloads.partition_aggregate import (
    DEFAULT_REQUEST_BYTES,
    DEFAULT_RESPONSE_BYTES,
    PartitionAggregatePattern,
)
from repro.workloads.schedule import build_schedule, offered_bytes

#: The matrix's default scheme column: XMP vs the single-path baseline
#: vs one MPTCP coupling (add ("lia", 4), ("olia", 2), ... per run).
MATRIX_SCHEMES: Tuple[Tuple[str, int], ...] = (
    ("xmp", 2),
    ("dctcp", 1),
    ("lia", 2),
)

#: The standard utilization sweep.
MATRIX_LOADS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)

#: Default fan-in sweep (k=4 gives 16 hosts, so 15 is the ceiling).
SWEEP_FAN_INS: Tuple[int, ...] = (2, 4, 8, 12)


def parse_scheme_spec(spec: str) -> Tuple[str, int]:
    """Parse a CLI scheme spec: ``"xmp-2"`` -> ("xmp", 2), ``"dctcp"`` -> ("dctcp", 1)."""
    name, dash, count = spec.rpartition("-")
    if dash and count.isdigit():
        return name.lower(), int(count)
    return spec.lower(), 1


# ----------------------------------------------------------------------
# Workload cells
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadScenario:
    """One (scheme, workload, load) cell of the evaluation matrix."""

    scheme: str = "xmp"
    subflows: int = 2
    workload: str = "websearch"
    arrival: str = "poisson"
    load: float = 0.4
    #: Burstiness of the lognormal arrival process (ignored for poisson).
    arrival_sigma: float = 1.0
    duration: float = 0.1
    k: int = 4
    seed: int = 1
    beta: float = 4.0
    marking_threshold: int = 10
    queue_capacity: int = 100
    rto_min: float = 0.200
    #: Multiplier on every sampled flow size (scaled-testbed knob).
    size_scale: float = 1.0
    #: Long-lived background bulk flows under the open-loop mice.
    background_elephants: int = 0
    queue_sample_interval: float = 0.001

    def label(self) -> str:
        base = self.scheme.upper()
        if self.subflows > 1:
            base = f"{base}-{self.subflows}"
        return f"{base}/{self.workload}@{self.load:g}"


@dataclass
class WorkloadResult:
    """Everything one workload cell hands to the FCT/queue reducers."""

    scenario: WorkloadScenario
    #: Completed open-loop flows (FCT = complete - start).
    records: List[FlowRecord] = field(default_factory=list)
    #: Open-loop flows still in flight at the horizon.
    unfinished: List[FlowRecord] = field(default_factory=list)
    #: Elephant background records (all unfinished by construction).
    elephants: List[FlowRecord] = field(default_factory=list)
    #: Arrivals generated / actually launched before the horizon.
    scheduled_flows: int = 0
    launched_flows: int = 0
    offered_bytes: int = 0
    #: The capacity (bits/s) the load fraction was calibrated against.
    capacity_bps: float = 0.0
    #: Sampled queue occupancy per topology layer.
    queue_samples: Dict[str, List[int]] = field(default_factory=dict)
    duration: float = 0.0
    total_marked: int = 0
    total_dropped: int = 0
    events: int = 0

    def fct_table(self) -> Dict[str, Dict[str, float]]:
        """count/mean/p50/p99 FCT per size bin (finished flows)."""
        return fct_by_size_bin(self.records, DEFAULT_BIN_EDGES, DEFAULT_BIN_LABELS)

    def fct_overall(self) -> Dict[str, float]:
        return fct_summary(self.records)

    def queue_p99(self, layer: Optional[str] = None) -> float:
        """99p sampled queue depth, over one layer or the whole fabric."""
        if layer is not None:
            return queue_depth_p99(self.queue_samples.get(layer, []))
        merged: List[int] = []
        for samples in self.queue_samples.values():
            merged.extend(samples)
        return queue_depth_p99(merged)

    def achieved_load(self) -> float:
        """Delivered bytes over capacity x duration — the served load."""
        if self.capacity_bps <= 0 or self.duration <= 0:
            return 0.0
        delivered = sum(r.delivered_bytes for r in self.records)
        delivered += sum(r.delivered_bytes for r in self.unfinished)
        return delivered * 8.0 / (self.capacity_bps * self.duration)


def _simulate_workload(scenario: WorkloadScenario) -> WorkloadResult:
    streams = RandomStreams(scenario.seed)
    net = build_fattree(
        k=scenario.k,
        queue_capacity=scenario.queue_capacity,
        marking_threshold=scenario.marking_threshold,
    )
    hosts = list(net.host_names)

    sampler = make_sampler(scenario.workload, scenario.size_scale)
    capacity = workload_capacity_bps(net)
    rate = offered_flow_rate(scenario.load, capacity, sampler.mean_bytes())
    process = make_arrivals(scenario.arrival, rate, sigma=scenario.arrival_sigma)
    schedule = build_schedule(
        hosts,
        sampler,
        process,
        streams.stream("workload-arrivals"),
        scenario.duration,
    )

    factory = TransferFactory(
        net,
        scenario.scheme,
        subflow_count=scenario.subflows,
        beta=scenario.beta,
        rto_min=scenario.rto_min,
        rng=streams.stream("paths-main"),
        label=scenario.label(),
    )
    pattern = OpenLoopPattern(factory, schedule)
    pattern.start()

    elephant_factory: Optional[TransferFactory] = None
    if scenario.background_elephants > 0:
        elephant_factory = TransferFactory(
            net,
            scenario.scheme,
            subflow_count=scenario.subflows,
            beta=scenario.beta,
            rto_min=scenario.rto_min,
            rng=streams.stream("paths-elephants"),
            label=f"{scenario.label()}/bg",
        )
        # Sized to outlive the run: double what a host access link could
        # serialize over the whole horizon.
        elephant_size = int(2 * net.link_rate_bps * scenario.duration / 8) + 1
        ElephantBackground(
            elephant_factory,
            hosts,
            scenario.background_elephants,
            elephant_size,
            rng=streams.stream("elephants"),
        ).start()

    monitor = QueueMonitor(
        net.sim,
        net.links,
        scenario.queue_sample_interval,
        until=scenario.duration,
    )
    monitor.start(scenario.queue_sample_interval)

    net.sim.run(until=scenario.duration)

    result = WorkloadResult(
        scenario=scenario,
        records=list(factory.records),
        unfinished=factory.unfinished_records(scenario.duration),
        elephants=(
            elephant_factory.all_records(scenario.duration)
            if elephant_factory is not None
            else []
        ),
        scheduled_flows=len(schedule),
        launched_flows=pattern.launched,
        offered_bytes=offered_bytes(schedule),
        capacity_bps=capacity,
        duration=scenario.duration,
    )
    check_fct_invariants(result.records, scenario.duration, context=scenario.label())
    layer_samples: Dict[str, List[int]] = {}
    for link in net.links:
        layer_samples.setdefault(link.layer, []).extend(
            monitor.occupancy[link.name]
        )
    result.queue_samples = layer_samples
    result.total_marked = net.total_marked()
    result.total_dropped = net.total_dropped()
    result.events = net.sim.events_processed
    return result


# ----------------------------------------------------------------------
# Incast fan-in cells
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class IncastSweepScenario:
    """One (scheme, fan-in) cell of the partition-aggregate sweep."""

    scheme: str = "xmp"
    subflows: int = 2
    fan_in: int = 8
    request_bytes: int = DEFAULT_REQUEST_BYTES
    response_bytes: int = DEFAULT_RESPONSE_BYTES
    concurrent_jobs: int = 4
    duration: float = 0.1
    k: int = 4
    seed: int = 1
    beta: float = 4.0
    marking_threshold: int = 10
    queue_capacity: int = 100
    rto_min: float = 0.200
    queue_sample_interval: float = 0.001

    def label(self) -> str:
        base = self.scheme.upper()
        if self.subflows > 1:
            base = f"{base}-{self.subflows}"
        return f"{base}/fanin{self.fan_in}"


@dataclass
class IncastSweepResult:
    """JCTs, response FCT records and queue depths of one fan-in cell."""

    scenario: IncastSweepScenario
    jcts: List[float] = field(default_factory=list)
    jobs_started: int = 0
    unfinished_ages: List[float] = field(default_factory=list)
    #: Completed response-flow records (the scheme-under-test traffic).
    responses: List[FlowRecord] = field(default_factory=list)
    queue_samples: Dict[str, List[int]] = field(default_factory=dict)
    access_rate_bps: float = 0.0
    duration: float = 0.0
    total_marked: int = 0
    total_dropped: int = 0
    events: int = 0

    def collapse_ratio(self) -> float:
        """Mean achieved/ideal fan-in goodput (1.0 = no collapse)."""
        return goodput_collapse_ratio(
            self.jcts,
            self.scenario.fan_in,
            self.scenario.response_bytes,
            self.access_rate_bps,
        )

    def response_fct(self) -> Dict[str, float]:
        return fct_summary(self.responses)

    def queue_p99(self, layer: Optional[str] = None) -> float:
        if layer is not None:
            return queue_depth_p99(self.queue_samples.get(layer, []))
        merged: List[int] = []
        for samples in self.queue_samples.values():
            merged.extend(samples)
        return queue_depth_p99(merged)


def _simulate_incast(scenario: IncastSweepScenario) -> IncastSweepResult:
    streams = RandomStreams(scenario.seed)
    net = build_fattree(
        k=scenario.k,
        queue_capacity=scenario.queue_capacity,
        marking_threshold=scenario.marking_threshold,
    )
    hosts = list(net.host_names)

    # Requests stay tiny, single-path TCP (the paper's small-flow rule);
    # the *responses* — the traffic that collapses — run the scheme
    # under test, which is what makes the sweep a scheme comparison.
    request_factory = TransferFactory(
        net,
        "tcp",
        subflow_count=1,
        rto_min=scenario.rto_min,
        rng=streams.stream("paths-requests"),
        label="REQ-TCP",
    )
    response_factory = TransferFactory(
        net,
        scenario.scheme,
        subflow_count=scenario.subflows,
        beta=scenario.beta,
        rto_min=scenario.rto_min,
        rng=streams.stream("paths-responses"),
        label=scenario.label(),
    )
    pattern = PartitionAggregatePattern(
        request_factory,
        response_factory,
        hosts,
        fan_in=scenario.fan_in,
        request_bytes=scenario.request_bytes,
        response_bytes=scenario.response_bytes,
        concurrent_jobs=scenario.concurrent_jobs,
        rng=streams.stream("incast-sweep"),
    )
    pattern.start()

    monitor = QueueMonitor(
        net.sim,
        net.links,
        scenario.queue_sample_interval,
        until=scenario.duration,
    )
    monitor.start(scenario.queue_sample_interval)

    net.sim.run(until=scenario.duration)

    result = IncastSweepResult(
        scenario=scenario,
        jcts=pattern.completion_times(),
        jobs_started=pattern.jobs_started,
        unfinished_ages=pattern.unfinished_ages(scenario.duration),
        responses=list(response_factory.records),
        access_rate_bps=net.link_rate_bps,
        duration=scenario.duration,
    )
    check_fct_invariants(result.responses, scenario.duration, context=scenario.label())
    layer_samples: Dict[str, List[int]] = {}
    for link in net.links:
        layer_samples.setdefault(link.layer, []).extend(
            monitor.occupancy[link.name]
        )
    result.queue_samples = layer_samples
    result.total_marked = net.total_marked()
    result.total_dropped = net.total_dropped()
    result.events = net.sim.events_processed
    return result


# ----------------------------------------------------------------------
# Campaign drivers
# ----------------------------------------------------------------------


@dataclass
class WorkloadMatrixResult:
    """The schemes x loads grid, addressable by (label, load)."""

    cells: Dict[Tuple[str, float], WorkloadResult] = field(default_factory=dict)
    loads: Sequence[float] = MATRIX_LOADS
    campaign: Optional[CampaignResult] = None

    def labels(self) -> List[str]:
        seen: List[str] = []
        for label, _load in self.cells:
            if label not in seen:
                seen.append(label)
        return seen

    def format(self) -> str:
        headers = [
            "scheme",
            "load",
            "flows",
            "mice p50 (ms)",
            "mice p99 (ms)",
            "all mean (ms)",
            "all p99 (ms)",
            "99p queue (pkt)",
        ]
        rows = []
        for (label, load), cell in self.cells.items():
            bins = cell.fct_table()
            overall = cell.fct_overall()
            rows.append(
                [
                    label.split("/")[0],
                    f"{load:g}",
                    f"{int(overall['count'])}",
                    f"{bins['mice']['p50_s'] * 1e3:.2f}",
                    f"{bins['mice']['p99_s'] * 1e3:.2f}",
                    f"{overall['mean_s'] * 1e3:.2f}",
                    f"{overall['p99_s'] * 1e3:.2f}",
                    f"{cell.queue_p99():.1f}",
                ]
            )
        workload = next(iter(self.cells.values())).scenario.workload if self.cells else "?"
        return format_table(
            headers, rows, title=f"Workload matrix ({workload}, FCT by load)"
        )


def run_workload_matrix(
    base: WorkloadScenario = WorkloadScenario(),
    schemes: Sequence[Tuple[str, int]] = MATRIX_SCHEMES,
    loads: Sequence[float] = MATRIX_LOADS,
    jobs: int = 1,
    cache=None,
    use_cache: bool = True,
) -> WorkloadMatrixResult:
    """Run every (scheme, load) workload cell through the campaign runner."""
    grid = [
        replace(base, scheme=scheme, subflows=subflows, load=load)
        for scheme, subflows in schemes
        for load in loads
    ]
    campaign = Campaign(jobs=jobs, cache=cache, use_cache=use_cache)
    outcome = campaign.run(RunSpec("workload", scenario) for scenario in grid)
    result = WorkloadMatrixResult(loads=list(loads), campaign=outcome)
    for scenario, cell in zip(grid, outcome.values):
        result.cells[(scenario.label(), scenario.load)] = cell
    return result


@dataclass
class IncastSweepTable:
    """The schemes x fan-ins grid with JCT and collapse columns."""

    cells: Dict[Tuple[str, int], IncastSweepResult] = field(default_factory=dict)
    fan_ins: Sequence[int] = SWEEP_FAN_INS
    campaign: Optional[CampaignResult] = None

    def format(self) -> str:
        headers = [
            "scheme",
            "fan-in",
            "rounds",
            "JCT p50 (ms)",
            "JCT p99 (ms)",
            "collapse",
            "resp p99 (ms)",
            "99p queue (pkt)",
        ]
        rows = []
        for (label, fan_in), cell in self.cells.items():
            jct = fct_summary_like(cell.jcts)
            resp = cell.response_fct()
            rows.append(
                [
                    label.split("/")[0],
                    f"{fan_in}",
                    f"{len(cell.jcts)}",
                    f"{jct['p50_s'] * 1e3:.2f}",
                    f"{jct['p99_s'] * 1e3:.2f}",
                    f"{cell.collapse_ratio():.3f}",
                    f"{resp['p99_s'] * 1e3:.2f}",
                    f"{cell.queue_p99():.1f}",
                ]
            )
        return format_table(
            headers, rows, title="Incast fan-in sweep (partition-aggregate)"
        )


def fct_summary_like(values: Sequence[float]) -> Dict[str, float]:
    """count/mean/p50/p99 of raw duration samples (JCT lists)."""
    from repro.metrics.stats import mean, percentile

    if not values:
        return {"count": 0.0, "mean_s": 0.0, "p50_s": 0.0, "p99_s": 0.0}
    return {
        "count": float(len(values)),
        "mean_s": mean(values),
        "p50_s": percentile(values, 50),
        "p99_s": percentile(values, 99),
    }


def run_incast_sweep(
    base: IncastSweepScenario = IncastSweepScenario(),
    schemes: Sequence[Tuple[str, int]] = MATRIX_SCHEMES,
    fan_ins: Sequence[int] = SWEEP_FAN_INS,
    jobs: int = 1,
    cache=None,
    use_cache: bool = True,
) -> IncastSweepTable:
    """Run every (scheme, fan-in) incast cell through the campaign runner."""
    grid = [
        replace(base, scheme=scheme, subflows=subflows, fan_in=fan_in)
        for scheme, subflows in schemes
        for fan_in in fan_ins
    ]
    campaign = Campaign(jobs=jobs, cache=cache, use_cache=use_cache)
    outcome = campaign.run(RunSpec("incast_sweep", scenario) for scenario in grid)
    result = IncastSweepTable(fan_ins=list(fan_ins), campaign=outcome)
    for scenario, cell in zip(grid, outcome.values):
        result.cells[(scenario.label(), scenario.fan_in)] = cell
    return result


__all__ = [
    "MATRIX_SCHEMES",
    "MATRIX_LOADS",
    "SWEEP_FAN_INS",
    "parse_scheme_spec",
    "WorkloadScenario",
    "WorkloadResult",
    "IncastSweepScenario",
    "IncastSweepResult",
    "WorkloadMatrixResult",
    "IncastSweepTable",
    "run_workload_matrix",
    "run_incast_sweep",
]
