"""Fig. 1 — convergence and fairness on one bottleneck.

Four flows compete for a 1 Gbps link (RTT 225 µs, BDP ≈ 19 packets).
Flows join at 0/1/2/3 intervals and leave at 4/5/6 intervals (the paper
"starts or stops a flow with an interval of 5 s"), so every interval
boundary breaks the equilibrium.  The paper contrasts DCTCP (K = 10, 20)
against constant-factor halving — i.e. BOS with β = 2 — at the same
thresholds: DCTCP converges slowly and can lock into unfair allocations
under global synchronization, while the constant cut re-converges fast.

Outputs per run: the rate-versus-time series of each flow (Fig. 1's
curves) and, per steady-state segment, Jain's index over the active flows
measured in the tail of the segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.metrics.collector import RateSampler
from repro.metrics.fairness import jain_index
from repro.mptcp.connection import MptcpConnection
from repro.topology.bottleneck import build_single_bottleneck

#: Flow join offsets and leave offsets, in units of the interval.
JOIN_STEPS = (0, 1, 2, 3)
LEAVE_STEPS = (4, 5, 6)
TOTAL_STEPS = 7


@dataclass(frozen=True)
class Fig1Config:
    """One Fig. 1 panel."""

    scheme: str = "dctcp"  # "dctcp" or "bos" (constant-factor cut)
    beta: float = 2.0  # only used by "bos"; beta=2 is "halving cwnd"
    marking_threshold: int = 10
    interval: float = 5.0  # the paper's 5 s; tests use much less
    bottleneck_rate_bps: float = 1e9
    rtt: float = 225e-6
    queue_capacity: int = 100
    num_flows: int = 4
    sample_interval: float = 0.05


@dataclass
class Fig1Result:
    """Rate series plus per-segment fairness."""

    config: Fig1Config
    times: List[float] = field(default_factory=list)
    rates: Dict[str, List[float]] = field(default_factory=dict)
    #: (segment_start, segment_end, active_flow_count, jain_index)
    segments: List[Tuple[float, float, int, float]] = field(default_factory=list)
    #: Active flow indices per segment (parallel to ``segments``).
    segment_flows: List[List[int]] = field(default_factory=list)
    #: Simulator events processed (runner observability).
    events: int = 0

    def normalized_rates(self, name: str) -> List[float]:
        cap = self.config.bottleneck_rate_bps
        return [rate / cap for rate in self.rates[name]]

    def worst_jain(self) -> float:
        """The worst steady-state fairness across multi-flow segments."""
        multi = [j for _, _, n, j in self.segments if n >= 2]
        return min(multi) if multi else 1.0

    def convergence_time(self, segment_index: int, tolerance: float = 0.3) -> float:
        """Seconds from a segment's start until rates settle at fair share.

        Convergence is the earliest sample time after which *every* active
        flow's rate stays within ``tolerance x fair_share`` of the fair
        share for the remainder of the segment.  Returns the full segment
        length if the segment never converges — the quantity the paper's
        Fig. 1 narrative contrasts between DCTCP and constant-factor cuts.
        """
        start, end, active_count, _jain = self.segments[segment_index]
        flows = self.segment_flows[segment_index]
        fair = self.config.bottleneck_rate_bps / active_count
        band = tolerance * fair
        sample_indices = [
            i for i, t in enumerate(self.times) if start < t <= end
        ]
        converged_from = None
        for i in sample_indices:
            within = all(
                abs(self.rates[f"flow{flow + 1}"][i] - fair) <= band
                for flow in flows
            )
            if within:
                if converged_from is None:
                    converged_from = self.times[i]
            else:
                converged_from = None
        if converged_from is None:
            return end - start
        return converged_from - start

    def mean_convergence_time(self, tolerance: float = 0.3) -> float:
        """Average convergence time over multi-flow segments."""
        times = [
            self.convergence_time(i, tolerance)
            for i, (_, _, n, _) in enumerate(self.segments)
            if n >= 2
        ]
        return sum(times) / len(times) if times else 0.0


def run_fig1(
    config: Fig1Config, use_cache: bool = False, cache=None
) -> Fig1Result:
    """Run one panel of Fig. 1 (through the campaign runner)."""
    from repro.runner import RunSpec, run_spec

    return run_spec(RunSpec("fig1", config), cache=cache, use_cache=use_cache).value


def _simulate(config: Fig1Config) -> Fig1Result:
    """Simulate one panel of Fig. 1 and return its series and fairness."""
    scheme = {"dctcp": "dctcp", "bos": "bos-uncoupled"}[config.scheme]
    net = build_single_bottleneck(
        num_pairs=config.num_flows,
        bottleneck_rate_bps=config.bottleneck_rate_bps,
        rtt=config.rtt,
        queue_capacity=config.queue_capacity,
        marking_threshold=config.marking_threshold,
    )
    flows = []
    for i in range(config.num_flows):
        connection = MptcpConnection(
            net, f"S{i}", f"D{i}", [net.flow_path(i)],
            scheme=scheme, beta=config.beta,
        )
        flows.append(connection)

    interval = config.interval
    for i, connection in enumerate(flows):
        net.sim.schedule(JOIN_STEPS[i % len(JOIN_STEPS)] * interval, connection.start)
    for i, step in enumerate(LEAVE_STEPS):
        if i < len(flows):
            net.sim.schedule(step * interval, flows[i].stop)

    total_time = TOTAL_STEPS * interval
    sampler = RateSampler(
        net.sim,
        {f"flow{i+1}": conn.subflows[0].sender for i, conn in enumerate(flows)},
        interval=config.sample_interval,
        until=total_time,
    )
    sampler.start(config.sample_interval)
    net.sim.run(until=total_time)

    result = Fig1Result(config=config, times=sampler.times, rates=sampler.rates)

    # Fairness in the tail (last 40%) of each between-events segment.
    for step in range(TOTAL_STEPS):
        seg_start, seg_end = step * interval, (step + 1) * interval
        active = [
            i
            for i in range(config.num_flows)
            if JOIN_STEPS[i % len(JOIN_STEPS)] <= step
            and (i >= len(LEAVE_STEPS) or LEAVE_STEPS[i] > step)
        ]
        if not active:
            continue
        tail_start = seg_end - 0.4 * interval
        means = []
        for i in active:
            means.append(sampler.mean_rate(f"flow{i+1}", tail_start, seg_end))
        result.segments.append(
            (seg_start, seg_end, len(active), jain_index(means))
        )
        result.segment_flows.append(active)
    result.events = net.sim.events_processed
    return result


__all__ = ["Fig1Config", "Fig1Result", "run_fig1", "JOIN_STEPS", "LEAVE_STEPS"]
