"""Table 2 — XMP coexisting with LIA / TCP / DCTCP (Random pattern).

Half of the hosts run XMP-2, the other half one of {LIA-2, TCP, DCTCP},
at switch queue sizes of 50 and 100 packets.  Paper's numbers (Mbps)::

    Queue size        50 packets      100 packets
    XMP : LIA        463.4 : 314.3   423.2 : 388.3
    XMP : TCP        522.9 : 175.3   501.8 : 243.4
    XMP : DCTCP      485.4 : 485.3   481.4 : 493.5

Shapes to hold: XMP ≈ DCTCP (both ECN-driven); XMP ≫ TCP; XMP > LIA, with
the gap narrowing as the queue grows (deep buffers help loss-based
schemes).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.fattree_eval import FatTreeScenario
from repro.experiments.reporting import format_table
from repro.runner import Campaign, CampaignResult, RunSpec

#: (coexisting scheme, its subflow count) — the paper's three rows.
COEXIST_SCHEMES: Tuple[Tuple[str, int], ...] = (
    ("lia", 2),
    ("tcp", 1),
    ("dctcp", 1),
)

QUEUE_SIZES: Tuple[int, ...] = (50, 100)

PAPER_TABLE2 = {
    ("lia", 50): (463.4, 314.3),
    ("lia", 100): (423.2, 388.3),
    ("tcp", 50): (522.9, 175.3),
    ("tcp", 100): (501.8, 243.4),
    ("dctcp", 50): (485.4, 485.3),
    ("dctcp", 100): (481.4, 493.5),
}


@dataclass
class Table2Result:
    """(other scheme, queue size) -> (XMP Mbps, other Mbps)."""

    cells: Dict[Tuple[str, int], Tuple[float, float]] = field(default_factory=dict)
    #: Per-cell runner observability (wall/events/cache provenance).
    campaign: Optional[CampaignResult] = None

    def format(self) -> str:
        schemes = []
        queues = []
        for scheme, queue in self.cells:
            if scheme not in schemes:
                schemes.append(scheme)
            if queue not in queues:
                queues.append(queue)
        headers = ["Pairing"] + [f"{q} packets" for q in sorted(queues)]
        rows = []
        for scheme in schemes:
            row = [f"XMP : {scheme.upper()}"]
            for queue in sorted(queues):
                xmp, other = self.cells[(scheme, queue)]
                row.append(f"{xmp:.1f} : {other:.1f}")
            rows.append(row)
        return format_table(
            headers, rows,
            title="Table 2: Average Goodput (Mbps), Random pattern, coexistence",
        )


def run_table2(
    base: FatTreeScenario = FatTreeScenario(),
    schemes: Sequence[Tuple[str, int]] = COEXIST_SCHEMES,
    queue_sizes: Sequence[int] = QUEUE_SIZES,
    jobs: int = 1,
    cache=None,
    use_cache: bool = True,
) -> Table2Result:
    """Run every coexistence cell and collect both sides' mean goodput."""
    grid = [
        replace(
            base,
            scheme="xmp",
            subflows=2,
            pattern="random",
            queue_capacity=queue,
            coexist_scheme=other_scheme,
            coexist_subflows=other_subflows,
        )
        for other_scheme, other_subflows in schemes
        for queue in queue_sizes
    ]
    campaign = Campaign(jobs=jobs, cache=cache, use_cache=use_cache)
    outcome = campaign.run(RunSpec("fattree", scenario) for scenario in grid)
    result = Table2Result(campaign=outcome)
    for scenario, run in zip(grid, outcome.values):
        other_scheme = scenario.coexist_scheme
        other_label = other_scheme.upper()
        if scenario.coexist_subflows > 1:
            other_label = f"{other_label}-{scenario.coexist_subflows}"
        result.cells[(other_scheme, scenario.queue_capacity)] = (
            run.mean_goodput_bps(scenario.label()) / 1e6,
            run.mean_goodput_bps(other_label) / 1e6,
        )
    return result


__all__ = [
    "COEXIST_SCHEMES",
    "QUEUE_SIZES",
    "PAPER_TABLE2",
    "Table2Result",
    "run_table2",
]
