"""Fig. 9 / Table 3 — incast job completion times.

Large (background) flows run the scheme under test; the incast jobs'
small flows are plain TCP.  The paper's CDF shows two jumps ~200 ms apart
(RTOmin collapses); DCTCP gives the shortest JCTs, XMP roughly doubles
DCTCP's median (it saturates every path), and LIA is far worse, with over
a tenth of jobs missing 300 ms.

Paper's Table 3::

               DCTCP  LIA-2  LIA-4  XMP-2  XMP-4
    mean JCT    52ms  156ms  180ms   93ms  109ms
    > 300 ms    0.1%  10.1%  12.5%   0.1%   0.2%
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.fattree_eval import FatTreeScenario
from repro.experiments.reporting import format_table
from repro.experiments.table1_goodput import TABLE1_SCHEMES
from repro.metrics.stats import cdf_points, mean
from repro.runner import Campaign, CampaignResult, RunSpec

PAPER_TABLE3 = {
    "DCTCP": (0.052, 0.001),
    "LIA-2": (0.156, 0.101),
    "LIA-4": (0.180, 0.125),
    "XMP-2": (0.093, 0.001),
    "XMP-4": (0.109, 0.002),
}

DEADLINE = 0.300


@dataclass
class JctResult:
    """Per-scheme JCT samples and their derived statistics."""

    jcts: Dict[str, List[float]] = field(default_factory=dict)
    jobs_started: Dict[str, int] = field(default_factory=dict)
    #: Ages of jobs still running when the simulation ended, per scheme.
    unfinished_ages: Dict[str, List[float]] = field(default_factory=dict)
    #: Per-cell runner observability (wall/events/cache provenance).
    campaign: Optional[CampaignResult] = None

    def cdf(self, label: str):
        return cdf_points(self.jcts[label])

    def mean_jct(self, label: str) -> float:
        return mean(self.jcts[label])

    def fraction_over(self, label: str, deadline: float = DEADLINE) -> float:
        """Fraction of jobs missing ``deadline``.

        A completed job misses if its JCT exceeds the deadline; a job still
        running at the end of the simulation misses only if it has already
        been running longer than the deadline (jobs merely truncated by the
        finite horizon are excluded from the denominator — counting them
        would charge the scheme for the experiment ending).
        """
        finished = self.jcts.get(label, [])
        ages = self.unfinished_ages.get(label, [])
        overdue_unfinished = sum(1 for age in ages if age > deadline)
        denominator = len(finished) + overdue_unfinished
        if denominator == 0:
            return 0.0
        misses = sum(1 for jct in finished if jct > deadline) + overdue_unfinished
        return misses / denominator

    def format_table3(self) -> str:
        headers = ["Scheme", "Mean JCT (ms)", f"> {DEADLINE*1e3:.0f} ms"]
        rows = []
        for label in self.jcts:
            rows.append(
                [
                    label,
                    f"{self.mean_jct(label) * 1e3:.1f}",
                    f"{self.fraction_over(label) * 100:.1f}%",
                ]
            )
        return format_table(headers, rows, title="Table 3: Job Completion Time")


def run_jct(
    base: FatTreeScenario = FatTreeScenario(),
    schemes: Sequence[Tuple[str, int]] = TABLE1_SCHEMES,
    jobs: int = 1,
    cache=None,
    use_cache: bool = True,
) -> JctResult:
    """Run the Incast pattern for every scheme and collect JCTs."""
    grid = [
        replace(base, scheme=scheme, subflows=subflows, pattern="incast")
        for scheme, subflows in schemes
    ]
    campaign = Campaign(jobs=jobs, cache=cache, use_cache=use_cache)
    outcome = campaign.run(RunSpec("fattree", scenario) for scenario in grid)
    result = JctResult(campaign=outcome)
    for scenario, run in zip(grid, outcome.values):
        label = scenario.label()
        result.jcts[label] = list(run.jcts)
        result.jobs_started[label] = run.jobs_started
        result.unfinished_ages[label] = list(run.jct_unfinished_ages)
    return result


__all__ = ["JctResult", "run_jct", "PAPER_TABLE3", "DEADLINE"]
