"""Plain-text rendering of tables, CDFs and five-number bars.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent and readable in pytest logs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.metrics.stats import percentile


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_cdf(
    values: Sequence[float],
    quantiles: Sequence[float] = (10, 25, 50, 75, 90, 99),
    unit: str = "",
    scale: float = 1.0,
) -> str:
    """Summarize a distribution by its quantiles on one line."""
    if not values:
        return "(no samples)"
    parts = [
        f"p{int(q)}={percentile(values, q) * scale:.3g}{unit}" for q in quantiles
    ]
    parts.append(f"n={len(values)}")
    return "  ".join(parts)


def format_summary(summary: Dict[str, float], scale: float = 1.0, unit: str = "") -> str:
    """Render a five-number summary dict from :func:`repro.metrics.stats.summarize`."""
    keys = ("min", "p10", "p50", "p90", "max")
    return "  ".join(f"{key}={summary[key] * scale:.3g}{unit}" for key in keys)


def format_cell_metrics(results: Iterable) -> str:
    """Render per-cell runner metrics (:class:`repro.runner.RunResult`).

    One row per campaign cell: label, cache provenance, wall-clock,
    events processed and events/sec — the observability surface the CLI
    prints under each experiment's table.
    """
    rows = []
    for result in results:
        metrics = result.metrics
        rows.append(
            (
                result.spec.label(),
                metrics.source,
                f"{metrics.wall_time_s:.3f}",
                f"{metrics.events:,}",
                f"{metrics.events_per_sec:,.0f}",
            )
        )
    return format_table(
        ["cell", "source", "wall (s)", "events", "events/s"],
        rows,
        title="Campaign cells",
    )


def format_series(
    series: Sequence[Tuple[float, float]], scale: float = 1.0, width: int = 50
) -> str:
    """Render a (time, value) series as a crude horizontal bar chart."""
    if not series:
        return "(empty series)"
    peak = max(value for _, value in series) or 1.0
    lines: List[str] = []
    for time, value in series:
        bar = "#" * int(width * value / peak)
        lines.append(f"{time:8.2f}s  {value * scale:10.3f}  {bar}")
    return "\n".join(lines)


__all__ = [
    "format_table",
    "format_cdf",
    "format_summary",
    "format_cell_metrics",
    "format_series",
]
