"""The MPTCP connection: subflows over pinned paths, one shared byte pool.

This is the unified transfer object every experiment uses — single-path
schemes are simply connections with one subflow and an uncoupled
controller, which keeps goodput accounting and lifecycle identical across
DCTCP, TCP, LIA-x and XMP-x (exactly how the paper's tables compare them).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.net.network import Network
from repro.net.packet import MSS_BYTES
from repro.net.routing import Path
from repro.sim.units import Seconds
from repro.transport.flow import echo_mode_for
from repro.transport.receiver import DEFAULT_DELACK_TIMEOUT, Receiver
from repro.transport.tcp import InfiniteSource, TcpSender, segments_for_bytes
from repro.mptcp.coupling import create_coupling
from repro.mptcp.scheduler import SharedSegmentPool
from repro.validate.hooks import active_validator


class Subflow:
    """One subflow: its sender, receiver and pinned forward path."""

    __slots__ = ("index", "sender", "receiver", "path", "failed")

    def __init__(self, index: int, sender: TcpSender, receiver: Receiver, path: Path) -> None:
        self.index = index
        self.sender = sender
        self.receiver = receiver
        self.path = path
        #: Set when reinjection declared this subflow's path dead.
        self.failed = False

    @property
    def rate_bps(self) -> float:
        """Instantaneous rate estimate cwnd/srtt in bits/second."""
        return self.sender.instant_rate * MSS_BYTES * 8.0


class MptcpConnection:
    """A multipath transfer from ``src`` to ``dst`` over explicit paths."""

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        paths: Sequence[Path],
        scheme: str = "xmp",
        size_bytes: Optional[int] = None,
        flow_id: Optional[int] = None,
        beta: float = 4.0,
        initial_cwnd: float = 10,
        rto_min: Seconds = 0.200,
        delack_timeout: Seconds = DEFAULT_DELACK_TIMEOUT,
        on_complete: Optional[Callable[["MptcpConnection", float], None]] = None,
        reinject_after_timeouts: Optional[int] = None,
        sack: bool = False,
        weight: float = 1.0,
        ack_jitter: Seconds = 0.0,
    ) -> None:
        if not paths:
            raise ValueError("a connection needs at least one path")
        self.network = network
        self.src = src
        self.dst = dst
        self.scheme = scheme
        self.flow_id = flow_id if flow_id is not None else network.next_flow_id()
        self.size_bytes = size_bytes
        self.on_complete = on_complete
        self.coupling = create_coupling(scheme, beta=beta, weight=weight)
        if size_bytes is None:
            self.total_segments: Optional[int] = None
            self.source = InfiniteSource()
        else:
            self.total_segments = segments_for_bytes(size_bytes)
            self.source = SharedSegmentPool(self.total_segments)
        self.delivered_segments = 0
        self.completed = False
        self.start_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        #: After this many consecutive RTOs a subflow is declared dead and
        #: its undelivered share of the pool is reinjected through the
        #: surviving subflows (None disables; finite transfers only).
        self.reinject_after_timeouts = reinject_after_timeouts
        #: Enable (simplified) SACK on every subflow; off by default to
        #: match the paper-default stack.
        self.sack = sack
        #: Receiver-side ACK jitter bound, seconds (0 = deterministic).
        self.ack_jitter = ack_jitter
        self._initial_cwnd = initial_cwnd
        self._rto_min = rto_min
        self._delack_timeout = delack_timeout
        self.subflows: List[Subflow] = []
        for path in paths:
            self.add_subflow(path)
        validator = active_validator()
        if validator is not None:
            validator.watch_connection(self)

    def add_subflow(self, path: Path, start: bool = False) -> Subflow:
        """Attach one more subflow over ``path``.

        Subflows can be added while the connection runs (the paper's Fig. 6
        experiment establishes Flow 1's subflows at 0 s, 5 s and 15 s);
        pass ``start=True`` (or call ``subflow.sender.start()``) to begin
        transmitting immediately.
        """
        index = len(self.subflows)
        cc = self.coupling.make_controller()
        sender = TcpSender(
            self.network.sim,
            self.network.host(self.src),
            self.flow_id,
            index,
            path,
            cc,
            self.source,
            initial_cwnd=self._initial_cwnd,
            rto_min=self._rto_min,
            on_delivered=self._on_delivered,
            sack_enabled=self.sack,
        )
        receiver = Receiver(
            self.network.sim,
            self.network.host(self.dst),
            self.flow_id,
            index,
            self.network.reverse_path(path),
            echo_mode=echo_mode_for(cc),
            delack_timeout=self._delack_timeout,
            sack_enabled=self.sack,
            ack_jitter=self.ack_jitter,
            jitter_seed=self.flow_id * 131 + index,
        )
        if self.reinject_after_timeouts is not None:
            sender.on_timeout_event = self._maybe_reinject
        subflow = Subflow(index, sender, receiver, path)
        self.subflows.append(subflow)
        if start:
            sender.start()
        return subflow

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start every not-yet-running subflow.

        The first call stamps the connection's start time; later calls
        (after :meth:`add_subflow`) only start the new subflows.
        """
        if self.start_time is None:
            self.start_time = self.network.sim.now
        for subflow in self.subflows:
            if not subflow.sender.running:
                subflow.sender.start()

    def stop(self) -> None:
        """Stop all subflows (used when tearing down long-running flows)."""
        for subflow in self.subflows:
            subflow.sender.stop()

    def close(self) -> None:
        """Stop and unregister every endpoint."""
        for subflow in self.subflows:
            subflow.sender.close()
            subflow.receiver.close()

    def _maybe_reinject(self, sender: TcpSender) -> None:
        """Declare a repeatedly-timed-out subflow dead and reinject its data.

        Connection-level robustness (the paper's §7 future-work point):
        segments granted to a dead subflow but never delivered are returned
        to the shared pool, and the surviving subflows are kicked so they
        pick the work up immediately.
        """
        limit = self.reinject_after_timeouts
        if limit is None or self.completed:
            return
        if sender.consecutive_timeouts < limit:
            return
        subflow = self.subflows[sender.subflow]
        if subflow.failed:
            return
        alive = [
            s for s in self.subflows
            if s.sender is not sender and not s.failed and s.sender.running
        ]
        if not alive:
            return  # nowhere to shift the data; keep probing this path
        subflow.failed = True
        sender.stop()
        undelivered = sender.assigned - sender.snd_una
        if undelivered > 0 and isinstance(self.source, SharedSegmentPool):
            self.source.restitute(undelivered)
            for survivor in alive:
                survivor.sender.kick()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _on_delivered(self, newly: int) -> None:
        self.delivered_segments += newly
        if (
            not self.completed
            and self.total_segments is not None
            and self.delivered_segments >= self.total_segments
        ):
            self.completed = True
            self.complete_time = self.network.sim.now
            self.stop()
            if self.on_complete is not None:
                self.on_complete(self, self.complete_time)

    @property
    def delivered_bytes(self) -> int:
        """Payload bytes acknowledged across all subflows."""
        return self.delivered_segments * MSS_BYTES

    def goodput_bps(self) -> float:
        """The paper's Goodput metric: size over whole running time."""
        if self.start_time is None:
            return 0.0
        end = self.complete_time if self.complete_time is not None else self.network.sim.now
        duration = end - self.start_time
        if duration <= 0:
            return 0.0
        return self.delivered_bytes * 8.0 / duration

    def subflow_rates_bps(self) -> List[float]:
        """Per-subflow instantaneous rate estimates, bits/second."""
        return [subflow.rate_bps for subflow in self.subflows]

    def srtts(self) -> List[Optional[float]]:
        """Per-subflow smoothed RTTs in seconds."""
        return [subflow.sender.srtt for subflow in self.subflows]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MptcpConnection(flow={self.flow_id}, {self.scheme}, "
            f"{self.src}->{self.dst}, subflows={len(self.subflows)})"
        )


__all__ = ["MptcpConnection", "Subflow"]
