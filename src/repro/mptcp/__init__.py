"""MPTCP: multipath connections and coupled congestion control.

An :class:`~repro.mptcp.connection.MptcpConnection` stripes one logical
transfer over several subflows, each a full
:class:`~repro.transport.tcp.TcpSender` pinned to its own path.  How the
subflows' windows are coupled is a pluggable *coupling*:

* ``"xmp"`` — the paper's scheme (BOS per subflow, TraSh tuning deltas);
* ``"lia"`` — MPTCP's default Linked Increases (Wischik et al., NSDI'11);
* ``"olia"`` — Opportunistic LIA (Khalili et al., CoNEXT'12), the fix the
  paper's §7 points at as future work;
* ``"bos-uncoupled"`` — BOS on every subflow with delta pinned to 1
  (the coupling ablation);
* ``"reno"`` / ``"tcp"`` — uncoupled Reno subflows (the fairness
  strawman); ``"dctcp"`` — DCTCP per subflow (single-path baseline when
  used with one path).
"""

from repro.mptcp.connection import MptcpConnection, Subflow
from repro.mptcp.coupling import available_schemes, create_coupling
from repro.mptcp.lia import LiaCoupling, LiaCC
from repro.mptcp.olia import OliaCoupling, OliaCC

__all__ = [
    "MptcpConnection",
    "Subflow",
    "available_schemes",
    "create_coupling",
    "LiaCoupling",
    "LiaCC",
    "OliaCoupling",
    "OliaCC",
]
