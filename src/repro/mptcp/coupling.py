"""Coupling registry: map scheme names to per-subflow controller factories.

A *coupling* owns whatever state its controllers share (TraSh's rate sums,
LIA's alpha) and hands out one controller per subflow.  Uncoupled schemes
get a trivial factory.  :func:`create_coupling` is the single entry point
experiments use, so scheme names in configs ("xmp", "lia-4", …) resolve in
one place.
"""

from __future__ import annotations

from typing import Callable, List

from repro.core.bos import BosCC
from repro.core.trash import TraSh
from repro.mptcp.lia import LiaCoupling
from repro.mptcp.olia import OliaCoupling
from repro.transport.cc import CongestionControl, RenoCC
from repro.transport.dctcp import DctcpCC


class UncoupledFactory:
    """Independent controllers; ``factory`` builds each one."""

    def __init__(self, factory: Callable[[], CongestionControl]) -> None:
        self._factory = factory
        self._controllers: List[CongestionControl] = []

    def make_controller(self) -> CongestionControl:
        controller = self._factory()
        self._controllers.append(controller)
        return controller

    @property
    def controllers(self) -> List[CongestionControl]:
        return list(self._controllers)


class XmpCoupling(TraSh):
    """TraSh with a fixed beta baked in, conforming to the coupling API."""

    def __init__(self, beta: float, weight: float = 1.0) -> None:
        super().__init__(weight=weight)
        self.beta = beta

    def make_controller(self) -> BosCC:  # type: ignore[override]
        return super().make_controller(self.beta)


def create_coupling(scheme: str, beta: float = 4.0, weight: float = 1.0):
    """Build the coupling object for ``scheme``.

    Recognized schemes: ``xmp``, ``lia``, ``olia``, ``bos-uncoupled``,
    ``dctcp``, ``d2tcp``, ``tcp`` / ``reno``, ``reno-ecn``.  ``weight``
    only affects XMP (bandwidth differentiation, see
    :class:`repro.core.trash.TraSh`).
    """
    name = scheme.lower()
    if name == "xmp":
        return XmpCoupling(beta, weight=weight)
    if name == "lia":
        return LiaCoupling()
    if name == "olia":
        return OliaCoupling()
    if name == "bos-uncoupled":
        return UncoupledFactory(lambda: BosCC(beta=beta))
    if name == "dctcp":
        return UncoupledFactory(DctcpCC)
    if name == "d2tcp":
        # Deadline-less D2TCP controllers (d = 1, i.e. DCTCP-equivalent);
        # per-flow deadlines are set by constructing D2tcpCC directly.
        from repro.transport.d2tcp import D2tcpCC

        return UncoupledFactory(D2tcpCC)
    if name in ("tcp", "reno"):
        return UncoupledFactory(lambda: RenoCC(ecn=False))
    if name == "reno-ecn":
        return UncoupledFactory(lambda: RenoCC(ecn=True))
    raise ValueError(f"unknown scheme: {scheme!r}")


def available_schemes() -> List[str]:
    """Names :func:`create_coupling` accepts."""
    return [
        "xmp",
        "lia",
        "olia",
        "bos-uncoupled",
        "dctcp",
        "d2tcp",
        "tcp",
        "reno",
        "reno-ecn",
    ]


__all__ = ["create_coupling", "available_schemes", "UncoupledFactory", "XmpCoupling"]
