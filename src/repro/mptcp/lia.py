"""LIA — Linked Increases, MPTCP's default coupled congestion control
(Wischik et al., NSDI 2011; RFC 6356).

Per ACKed segment on subflow r in congestion avoidance:

.. math::

    \\Delta w_r = \\min\\!\\left(\\frac{\\alpha}{w_{total}},
                               \\frac{1}{w_r}\\right),
    \\qquad
    \\alpha = w_{total}
              \\frac{\\max_r (w_r / rtt_r^2)}{(\\sum_r w_r / rtt_r)^2}

Decrease is the Reno halving on loss.  LIA is loss-driven and not
ECN-capable — in the paper's simulations it fills DropTail buffers and
suffers 200 ms RTO recoveries, which is exactly the behaviour Tables 1/3
penalize it for.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.transport.cc import RenoCC


def lia_alpha(windows: Sequence[float], rtts: Sequence[float]) -> float:
    """RFC 6356's aggressiveness factor as a pure formula.

    ``alpha = w_total * max_r(w_r/rtt_r^2) / (sum_r w_r/rtt_r)^2`` over
    parallel ``windows``/``rtts`` sequences.  Shared by the packet-level
    :class:`LiaCoupling` and the fluid backend's LIA law
    (:mod:`repro.fluid.laws`).  Returns 0.0 when any RTT is unknown or
    non-positive (the packet side's "not measured yet" fallback).
    """
    numerator = 0.0
    denominator = 0.0
    total = 0.0
    for cwnd, rtt in zip(windows, rtts):
        if rtt is None or rtt <= 0:
            return 0.0
        numerator = max(numerator, cwnd / (rtt * rtt))
        denominator += cwnd / rtt
        total += cwnd
    if denominator <= 0:
        return 0.0
    return total * numerator / (denominator * denominator)


class LiaCoupling:
    """Shared state across the LIA controllers of one MPTCP flow."""

    def __init__(self) -> None:
        self._controllers: List["LiaCC"] = []

    def make_controller(self) -> "LiaCC":
        controller = LiaCC(self)
        self._controllers.append(controller)
        return controller

    @property
    def controllers(self) -> List["LiaCC"]:
        return list(self._controllers)

    def _active(self):
        for controller in self._controllers:
            sender = controller.sender
            if sender is not None and sender.running and not sender.completed:
                yield sender

    def total_cwnd(self) -> float:
        """Sum of windows over active subflows."""
        return sum(sender.cwnd for sender in self._active())

    def alpha(self) -> float:
        """RFC 6356's aggressiveness factor; 0 when RTTs are unknown yet."""
        windows = []
        rtts = []
        for sender in self._active():
            srtt = sender.srtt
            if srtt is None or srtt <= 0:
                return 0.0
            windows.append(sender.cwnd)
            rtts.append(srtt)
        return lia_alpha(windows, rtts)


class LiaCC(RenoCC):
    """Per-subflow LIA controller: Reno with the linked increase."""

    def __init__(self, coupling: LiaCoupling) -> None:
        super().__init__(ecn=False)
        self.coupling = coupling

    def increase_per_segment(self, newly_acked: int) -> float:
        sender = self.sender
        assert sender is not None
        own = 1.0 / max(sender.cwnd, 1.0)
        alpha = self.coupling.alpha()
        if alpha <= 0.0:
            # RTTs not measured yet: fall back to the uncoupled increase.
            return own
        total = self.coupling.total_cwnd()
        if total <= 0.0:
            return own
        return min(alpha / total, own)


__all__ = ["LiaCoupling", "LiaCC", "lia_alpha"]
