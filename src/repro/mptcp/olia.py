"""OLIA — Opportunistic Linked Increases (Khalili et al., CoNEXT 2012).

The paper's §7 notes TraSh may inherit LIA's non-Pareto-optimality and
points at OLIA's fix as future work; we implement it as the extension
baseline.  Per ACKed segment on path r in congestion avoidance:

.. math::

    \\Delta w_r = \\frac{w_r / rtt_r^2}{(\\sum_p w_p / rtt_p)^2}
                  + \\frac{\\alpha_r}{w_r}

where, with ``n`` the number of paths, ``M`` the set of *best* paths
(largest ``l_p^2 / rtt_p``, with ``l_p`` the smoothed data delivered
between losses) and ``B`` the set of largest-window paths:

* ``alpha_r = +1 / (n * |M \\ B|)``  if ``r`` is a best path with a small
  window (push traffic onto it),
* ``alpha_r = -1 / (n * |B|)``      if ``r`` has a maximal window but is
  not best (pull traffic off it), provided ``M \\ B`` is non-empty,
* ``alpha_r = 0`` otherwise.

Decrease is Reno halving on loss; OLIA is loss-driven (not ECN-capable).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.transport.cc import RenoCC


class OliaCoupling:
    """Shared state across the OLIA controllers of one MPTCP flow."""

    def __init__(self) -> None:
        self._controllers: List["OliaCC"] = []

    def make_controller(self) -> "OliaCC":
        controller = OliaCC(self)
        self._controllers.append(controller)
        return controller

    @property
    def controllers(self) -> List["OliaCC"]:
        return list(self._controllers)

    def _active(self) -> List["OliaCC"]:
        active = []
        for controller in self._controllers:
            sender = controller.sender
            if sender is not None and sender.running and not sender.completed:
                active.append(controller)
        return active

    def rate_denominator(self) -> float:
        """``(sum_p w_p/rtt_p)^2``; 0 while RTTs are unknown."""
        total = 0.0
        for controller in self._active():
            sender = controller.sender
            assert sender is not None
            srtt = sender.srtt
            if srtt is None or srtt <= 0:
                return 0.0
            total += sender.cwnd / srtt
        return total * total

    def alphas(self) -> Dict["OliaCC", float]:
        """The per-path ``alpha_r`` assignment described above."""
        active = self._active()
        result: Dict["OliaCC", float] = {controller: 0.0 for controller in active}
        if len(active) < 2:
            return result
        quality = {}
        for controller in active:
            sender = controller.sender
            assert sender is not None
            srtt = sender.srtt if sender.srtt else 1.0
            loss_interval = controller.loss_interval()
            quality[controller] = loss_interval * loss_interval / srtt
        best_quality = max(quality.values())
        best: Set["OliaCC"] = {
            c for c, q in quality.items() if q >= best_quality * (1.0 - 1e-9)
        }
        max_window = max(c.sender.cwnd for c in active)  # type: ignore[union-attr]
        largest: Set["OliaCC"] = {
            c
            for c in active
            if c.sender is not None and c.sender.cwnd >= max_window * (1.0 - 1e-9)
        }
        best_small = best - largest
        n = len(active)
        if best_small:
            share = 1.0 / (n * len(best_small))
            for controller in best_small:
                result[controller] = share
            penalty = 1.0 / (n * len(largest))
            for controller in largest:
                if controller not in best:
                    result[controller] = -penalty
        return result


class OliaCC(RenoCC):
    """Per-subflow OLIA controller."""

    def __init__(self, coupling: OliaCoupling) -> None:
        super().__init__(ecn=False)
        self.coupling = coupling
        # l1: segments delivered between the previous two losses;
        # l2: segments delivered since the last loss.
        self._l1 = 0.0
        self._l2 = 0.0

    def loss_interval(self) -> float:
        """``l_r`` — the larger of the two inter-loss transfer estimates."""
        return max(self._l1, self._l2, 1.0)

    def on_ack(self, newly_acked, ece_count, rtt_sample, now, round_ended):
        if newly_acked > 0:
            self._l2 += newly_acked
        super().on_ack(newly_acked, ece_count, rtt_sample, now, round_ended)

    def on_loss_event(self, now: float) -> None:
        self._l1, self._l2 = self._l2, 0.0
        super().on_loss_event(now)

    def on_timeout(self, now: float) -> None:
        self._l1, self._l2 = self._l2, 0.0
        super().on_timeout(now)

    def increase_per_segment(self, newly_acked: int) -> float:
        sender = self.sender
        assert sender is not None
        own = 1.0 / max(sender.cwnd, 1.0)
        denominator = self.coupling.rate_denominator()
        if denominator <= 0.0:
            return own
        srtt = sender.srtt
        if srtt is None or srtt <= 0:
            return own
        base = (sender.cwnd / (srtt * srtt)) / denominator
        alpha = self.coupling.alphas().get(self, 0.0)
        increase = base + alpha / max(sender.cwnd, 1.0)
        # OLIA caps the increase at the uncoupled TCP rate and floors the
        # total at zero (a path is never actively shrunk by the increase
        # term).
        return max(0.0, min(increase, own))


__all__ = ["OliaCoupling", "OliaCC"]
