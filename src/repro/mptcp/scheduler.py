"""Segment scheduling across subflows.

The connection stripes data with a *demand-driven* pull model: every
subflow pulls batches of segments from one shared
:class:`~repro.transport.tcp.FiniteSource` whenever its congestion window
opens.  Faster subflows (larger window, shorter RTT) therefore naturally
carry proportionally more of the transfer — the steady-state behaviour of
the Linux MPTCP lowest-RTT-first scheduler the paper's implementation
used — without simulating per-packet scheduler decisions.

Connection-level reinjection (re-sending data stranded on a dead subflow
through a live one) is intentionally not modelled: the paper's throughput
experiments keep paths up for the lifetime of finite transfers, and the
one experiment that kills a link (Fig. 7) uses long-running flows measured
by rate, not completion.  The limitation is documented here and in
DESIGN.md.
"""

from __future__ import annotations

from repro.transport.tcp import FiniteSource, InfiniteSource, SegmentSource


class SharedSegmentPool(FiniteSource):
    """A finite pool of segments shared by all subflows of one connection.

    Semantically identical to :class:`FiniteSource`; the subclass exists so
    connection code reads as what it means and so pool-specific accounting
    can be added without touching the single-path source.
    """

    @property
    def remaining(self) -> int:
        """Segments not yet handed to any subflow."""
        return self.total - self.granted

    def restitute(self, count: int) -> None:
        """Return ``count`` granted-but-undelivered segments to the pool.

        Used by connection-level reinjection: when a subflow is declared
        dead, the data it was assigned but never got acknowledged goes
        back into the pool so surviving subflows can carry it.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count > self.granted:
            raise ValueError(
                f"cannot restitute {count} of {self.granted} granted segments"
            )
        self.granted -= count


__all__ = ["SharedSegmentPool", "SegmentSource", "InfiniteSource"]
