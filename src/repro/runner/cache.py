"""Content-addressed run caching: a bounded in-process tier plus an
optional on-disk tier.

The cache key is a SHA-256 over ``(schema version, repro version, kind,
config fields)`` — the *content* of the spec, not its identity — so a
result written by one process is valid in any other process running the
same code.  Disk entries are pickles stored under
``<cache-dir>/<key[:2]>/<key>.pkl`` (``~/.cache/repro`` by default,
overridable via ``$REPRO_CACHE_DIR`` or the CLI's ``--cache-dir``).

Robustness rules:

* a corrupted or truncated cache file is treated as a **miss** (and
  unlinked best-effort), never an error;
* writes go through a temp file + :func:`os.replace`, so a concurrent
  reader can never observe a partial pickle;
* the memory tier is a bounded LRU (the seed's unbounded
  ``fattree_eval._CACHE`` dict is gone);
* a miss is signalled by the :data:`MISS` sentinel, never by ``None`` —
  ``None`` is a legitimate cacheable result value, and conflating the
  two silently re-ran such specs forever.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pathlib
import pickle
import tempfile
from collections import OrderedDict
from typing import Any, Optional, Tuple

from repro import __version__
from repro.runner.spec import SOURCE_DISK, SOURCE_MEMORY, RunSpec

#: Bump when the pickled result layout changes incompatibly.  2: the
#: fingerprint's dict-key ordering changed to (type-name, repr) so
#: mixed-type keys hash instead of raising TypeError.
CACHE_SCHEMA = 2

_ENV_CACHE_DIR = "REPRO_CACHE_DIR"


class _Miss:
    """The cache-miss sentinel's type; :data:`MISS` is its only instance."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "MISS"


#: Returned by :meth:`MemoryCache.get` / :meth:`DiskCache.get` /
#: :meth:`RunCache.lookup` when nothing is cached.  Compare with ``is``.
MISS = _Miss()


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(_ENV_CACHE_DIR)
    if env:
        return pathlib.Path(env).expanduser()
    return pathlib.Path("~/.cache/repro").expanduser()


def _stable(value: Any) -> Any:
    """A deterministic, repr-stable view of a config value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (f.name, _stable(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if isinstance(value, (list, tuple)):
        return tuple(_stable(item) for item in value)
    if isinstance(value, dict):
        # Sort by (type-name, repr): raw keys of mixed types (1 vs "1")
        # are not mutually orderable and would raise TypeError mid-
        # campaign; type-name-first also keeps 1 and True distinct.
        return tuple(
            (key, _stable(item))
            for key, item in sorted(
                value.items(),
                key=lambda kv: (type(kv[0]).__name__, repr(kv[0])),
            )
        )
    return value


def spec_fingerprint(spec: RunSpec) -> str:
    """The content hash addressing one spec's result on disk."""
    payload = repr((CACHE_SCHEMA, __version__, spec.kind, _stable(spec.config)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class MemoryCache:
    """A bounded LRU over (hashable) specs, sharing results in-process."""

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[RunSpec, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, spec: RunSpec) -> Any:
        """The cached value, or :data:`MISS`.

        ``None`` is a valid cached value (a run function may legitimately
        return it); only the sentinel means "not cached".
        """
        try:
            value = self._entries[spec]
        except KeyError:
            return MISS
        self._entries.move_to_end(spec)
        return value

    def put(self, spec: RunSpec, value: Any) -> None:
        self._entries[spec] = value
        self._entries.move_to_end(spec)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


class DiskCache:
    """Pickled results under a content-addressed directory layout."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = pathlib.Path(directory) if directory else default_cache_dir()

    def path_for(self, key: str) -> pathlib.Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """The unpickled value, or :data:`MISS` (``None`` is a value)."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return MISS
        except Exception:
            # Corrupted / truncated / unreadable entry: treat as a miss
            # and drop the bad file so the rewrite heals it.
            try:
                path.unlink()
            except OSError:
                pass
            return MISS

    def put(self, key: str, value: Any) -> None:
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            # Caching is best-effort; an unwritable dir must not kill a run.
            pass

    def clear(self) -> None:
        if not self.directory.exists():
            return
        for path in self.directory.glob("*/*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass


class RunCache:
    """The two-tier cache a :class:`~repro.runner.campaign.Campaign` uses.

    ``memory`` serves repeat lookups within a process with *object
    identity* preserved (table/figure views that share simulations get
    the very same result object, as the old in-process memo did);
    ``disk`` persists results across processes and invocations.
    """

    def __init__(
        self,
        memory: Optional[MemoryCache] = None,
        disk: Optional[DiskCache] = None,
    ) -> None:
        self.memory = memory if memory is not None else MemoryCache()
        self.disk = disk

    def lookup(self, spec: RunSpec) -> Optional[Tuple[Any, str]]:
        """The cached value and the tier it came from, or ``None``.

        The tiers signal misses with :data:`MISS`, so a cached ``None``
        result is a hit here like any other value.
        """
        value = self.memory.get(spec)
        if value is not MISS:
            return value, SOURCE_MEMORY
        if self.disk is not None:
            value = self.disk.get(spec_fingerprint(spec))
            if value is not MISS:
                self.memory.put(spec, value)
                return value, SOURCE_DISK
        return None

    def store(self, spec: RunSpec, value: Any) -> None:
        self.memory.put(spec, value)
        if self.disk is not None:
            self.disk.put(spec_fingerprint(spec), value)

    def clear_memory(self) -> None:
        self.memory.clear()

    def clear(self) -> None:
        self.memory.clear()
        if self.disk is not None:
            self.disk.clear()


_DEFAULT_CACHE: Optional[RunCache] = None


def default_cache() -> RunCache:
    """The process-wide cache used when callers don't supply one.

    Memory tier always; a disk tier is attached iff ``$REPRO_CACHE_DIR``
    is set (the library never writes to ``~/.cache`` unless asked — the
    CLI attaches a disk tier explicitly, see :mod:`repro.cli`).
    """
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        disk = DiskCache() if os.environ.get(_ENV_CACHE_DIR) else None
        _DEFAULT_CACHE = RunCache(memory=MemoryCache(), disk=disk)
    return _DEFAULT_CACHE


def reset_default_cache() -> None:
    """Forget the process-wide cache (tests re-point ``$REPRO_CACHE_DIR``)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = None


__all__ = [
    "CACHE_SCHEMA",
    "MISS",
    "MemoryCache",
    "DiskCache",
    "RunCache",
    "default_cache",
    "default_cache_dir",
    "reset_default_cache",
    "spec_fingerprint",
]
