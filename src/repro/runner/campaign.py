"""The campaign executor: fan a grid of specs out, merge deterministically.

A paper evaluation is dozens of *independent* (scheme, pattern, seed)
cells; :class:`Campaign` runs such a grid through the cache and, for the
misses, over a :class:`concurrent.futures.ProcessPoolExecutor`.  Two
properties make parallelism safe here:

* every registered run function is pure — each cell builds its own
  :class:`~repro.sim.engine.Simulator` and
  :class:`~repro.sim.random.RandomStreams` from the spec alone, so a
  cell's result does not depend on which process computed it; and
* results are merged in **input order**, regardless of completion order,
  so ``jobs=4`` output is bit-identical to ``jobs=1`` output.

Workers return full :class:`~repro.runner.spec.RunResult` objects (the
parent writes cache entries, so the disk tier has a single writer per
campaign; concurrent campaigns stay safe through atomic replace).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional

from repro.runner.cache import RunCache, default_cache
from repro.runner.registry import events_of, execute
from repro.runner.spec import CellMetrics, RunResult, RunSpec


@dataclass
class CampaignResult:
    """All cells of one campaign, in the order their specs were given."""

    results: List[RunResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def values(self) -> List[Any]:
        return [result.value for result in self.results]

    def value_for(self, spec: RunSpec) -> Any:
        for result in self.results:
            if result.spec == spec:
                return result.value
        raise KeyError(f"no result for {spec!r}")

    @property
    def cached_count(self) -> int:
        return sum(1 for r in self.results if r.metrics.cached)

    @property
    def total_events(self) -> int:
        return sum(r.metrics.events for r in self.results)

    @property
    def compute_wall_s(self) -> float:
        """Summed wall-clock of the cells that actually simulated."""
        return sum(r.metrics.wall_time_s for r in self.results if not r.metrics.cached)

    def summary(self) -> str:
        """One line for the CLI: cells, cache hits, wall, events, rate."""
        cells = len(self.results)
        cached = self.cached_count
        computed = cells - cached
        parts = [f"{cells} cell{'s' if cells != 1 else ''}"]
        if cached:
            parts.append(f"{cached} cached")
        if computed:
            wall = self.compute_wall_s
            events = sum(
                r.metrics.events for r in self.results if not r.metrics.cached
            )
            rate = events / wall if wall > 0 else 0.0
            # Summed per-cell wall: under --jobs N this exceeds real time
            # (cells overlap), so label it cell-seconds, not seconds.
            parts.append(
                f"{computed} simulated in {wall:.2f} cell-seconds"
                f" ({events:,} events, {rate:,.0f} ev/s)"
            )
        else:
            parts.append("all served from cache")
        return " | ".join(parts)

    def format_cells(self) -> str:
        """Per-cell table: label, source, wall, events, events/sec."""
        # Imported lazily: reporting lives under repro.experiments, whose
        # drivers import repro.runner back.
        from repro.experiments.reporting import format_cell_metrics

        return format_cell_metrics(self.results)


class Campaign:
    """Run grids of :class:`RunSpec` cells with caching and parallelism.

    Args:
        jobs: worker processes for cache misses; ``1`` runs inline.
        cache: the :class:`RunCache` to consult/fill; defaults to the
            process-wide :func:`default_cache`.
        use_cache: ``False`` disables lookup *and* store (the CLI's
            ``--no-cache``).
        telemetry: a :class:`~repro.obs.telemetry.Telemetry` sink that
            receives one JSONL record per cell after the merge; defaults
            to the ``$REPRO_TELEMETRY`` directory when that is set (the
            CLI's ``--telemetry``), else off.  Like the disk cache, the
            parent process is the single writer.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[RunCache] = None,
        use_cache: bool = True,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.use_cache = use_cache
        self.cache = (cache if cache is not None else default_cache()) if use_cache else None
        if telemetry is None:
            from repro.obs.telemetry import from_environment

            telemetry = from_environment()
        self.telemetry = telemetry

    def run(self, specs: Iterable[RunSpec]) -> CampaignResult:
        # Telemetry records embed engine profiles, so the cells that miss
        # the cache must run profiled — in-process and in pool workers
        # alike.  Exporting $REPRO_PROFILE before the pool is created
        # covers both (children inherit the environment at creation).
        profile_exported = False
        if self.telemetry is not None and not os.environ.get("REPRO_PROFILE"):
            os.environ["REPRO_PROFILE"] = "1"
            profile_exported = True
        try:
            return self._run(specs)
        finally:
            if profile_exported:
                del os.environ["REPRO_PROFILE"]

    def _run(self, specs: Iterable[RunSpec]) -> CampaignResult:
        spec_list = list(specs)
        results: List[Optional[RunResult]] = [None] * len(spec_list)
        misses: List[int] = []
        for index, spec in enumerate(spec_list):
            hit = self.cache.lookup(spec) if self.cache is not None else None
            if hit is None:
                misses.append(index)
                continue
            value, source = hit
            results[index] = RunResult(
                spec=spec,
                value=value,
                metrics=CellMetrics(
                    wall_time_s=0.0, events=events_of(spec, value), source=source
                ),
            )

        if misses:
            if self.jobs == 1 or len(misses) == 1:
                for index in misses:
                    results[index] = execute(spec_list[index])
            else:
                workers = min(self.jobs, len(misses))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        index: pool.submit(execute, spec_list[index])
                        for index in misses
                    }
                    # Collect in input order: the merge is deterministic
                    # no matter which worker finishes first.
                    for index in misses:
                        results[index] = futures[index].result()
            if self.cache is not None:
                for index in misses:
                    result = results[index]
                    assert result is not None
                    self.cache.store(result.spec, result.value)

        assert all(result is not None for result in results)
        outcome = CampaignResult(results=list(results))  # type: ignore[arg-type]
        if self.telemetry is not None:
            self.telemetry.record_results(outcome.results)
        return outcome


def run_spec(
    spec: RunSpec,
    cache: Optional[RunCache] = None,
    use_cache: bool = True,
) -> RunResult:
    """Run a single spec through the cache (the one-cell campaign)."""
    campaign = Campaign(jobs=1, cache=cache, use_cache=use_cache)
    return campaign.run([spec]).results[0]


__all__ = ["Campaign", "CampaignResult", "run_spec"]
