"""repro.runner — the unified campaign runner (spec/result layer).

Every experiment in the repo — testbed (Figs. 4/6), torus (Fig. 7),
single-bottleneck (Fig. 1) and the whole fat-tree evaluation (Tables
1-3, Figs. 8-11) — flows through one contract:

* :class:`~repro.runner.spec.RunSpec` — *what* to run: an experiment
  ``kind`` plus its frozen config dataclass; hashable and picklable.
* :class:`~repro.runner.spec.RunResult` — the driver-specific result
  plus :class:`~repro.runner.spec.CellMetrics` (wall-clock, events,
  events/sec, cache provenance).
* :class:`~repro.runner.campaign.Campaign` — runs a grid of specs,
  consulting a two-tier :class:`~repro.runner.cache.RunCache` (bounded
  in-process LRU + content-addressed on-disk pickles) and fanning cache
  misses over a process pool.  Results merge in input order, so
  ``jobs=N`` output is bit-identical to serial output.

Quick use::

    from repro.runner import Campaign, RunSpec
    from repro.experiments.fattree_eval import FatTreeScenario

    specs = [RunSpec("fattree", FatTreeScenario(scheme=s, subflows=n))
             for s, n in (("dctcp", 1), ("xmp", 2), ("xmp", 4))]
    outcome = Campaign(jobs=4).run(specs)
    print(outcome.summary())
"""

from repro.runner.cache import (
    MISS,
    DiskCache,
    MemoryCache,
    RunCache,
    default_cache,
    default_cache_dir,
    reset_default_cache,
    spec_fingerprint,
)
from repro.runner.campaign import Campaign, CampaignResult, run_spec
from repro.runner.registry import (
    execute,
    events_of,
    kind_entry,
    register_kind,
    registered_kinds,
)
from repro.runner.spec import CellMetrics, RunResult, RunSpec

__all__ = [
    "Campaign",
    "CampaignResult",
    "CellMetrics",
    "DiskCache",
    "MISS",
    "MemoryCache",
    "RunCache",
    "RunResult",
    "RunSpec",
    "default_cache",
    "default_cache_dir",
    "events_of",
    "execute",
    "kind_entry",
    "register_kind",
    "registered_kinds",
    "reset_default_cache",
    "run_spec",
    "spec_fingerprint",
]
