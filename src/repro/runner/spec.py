"""The spec/result contract every experiment run flows through.

A :class:`RunSpec` names *what* to simulate — an experiment ``kind``
(registered in :mod:`repro.runner.registry`) plus that kind's frozen
config dataclass (:class:`~repro.experiments.fattree_eval.FatTreeScenario`,
:class:`~repro.experiments.fig1_convergence.Fig1Config`, ...).  Because
the config is frozen and the registered run functions are pure (each
builds its own :class:`~repro.sim.engine.Simulator` and
:class:`~repro.sim.random.RandomStreams`), a spec is a complete,
hashable, picklable description of a deterministic computation: the same
spec always produces the same result, whether it runs inline, in a
worker process, or is reloaded from the on-disk cache.

A :class:`RunResult` pairs the spec with the driver-specific result
object (``value``) and per-cell observability (:class:`CellMetrics`):
wall-clock time, events processed, events/sec, and where the result came
from (computed, memory tier, disk tier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Where a result came from.
SOURCE_RUN = "run"
SOURCE_MEMORY = "memory"
SOURCE_DISK = "disk"


@dataclass(frozen=True)
class RunSpec:
    """One cell of a campaign: an experiment kind plus its frozen config."""

    kind: str
    config: Any

    def label(self) -> str:
        """A short human-readable cell name for summaries and tables."""
        config = self.config
        parts = [self.kind]
        scheme = getattr(config, "scheme", None)
        if callable(getattr(config, "label", None)):
            parts.append(config.label())
        elif scheme is not None:
            parts.append(str(scheme))
        pattern = getattr(config, "pattern", None)
        if pattern is not None:
            parts.append(str(pattern))
        seed = getattr(config, "seed", None)
        if seed is not None:
            parts.append(f"s{seed}")
        return "/".join(parts)


@dataclass(frozen=True)
class CellMetrics:
    """Per-cell observability: cost and provenance of one result."""

    wall_time_s: float = 0.0
    events: int = 0
    source: str = SOURCE_RUN
    #: Invariant checks performed while computing this cell (0 when the
    #: run was not validated, or when the result came from a cache).
    invariant_checks: int = 0
    #: Engine profile of this cell's run — a
    #: :class:`~repro.obs.profiler.ProfileSnapshot` when the cell was
    #: simulated under profiling (``--telemetry`` / ``$REPRO_PROFILE``),
    #: else ``None`` (unprofiled runs and cache hits alike).  Picklable,
    #: so pool workers' profiles ride home inside the RunResult.
    profile: Any = None

    @property
    def cached(self) -> bool:
        return self.source != SOURCE_RUN

    @property
    def events_per_sec(self) -> float:
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.events / self.wall_time_s


@dataclass
class RunResult:
    """A spec, its driver-specific result object, and how it was obtained."""

    spec: RunSpec
    value: Any
    metrics: CellMetrics


__all__ = [
    "RunSpec",
    "RunResult",
    "CellMetrics",
    "SOURCE_RUN",
    "SOURCE_MEMORY",
    "SOURCE_DISK",
]
