"""Experiment-kind registry: the dispatch table behind :class:`RunSpec`.

Kinds are registered *lazily* as ``(module, function)`` name pairs rather
than callables, for two reasons:

* the experiment modules import :mod:`repro.runner` to route their public
  ``run_*`` entry points through it, so the registry must not import them
  back at module-import time (cycle); and
* worker processes receive only the pickled :class:`RunSpec` and resolve
  the run function themselves, so nothing un-picklable crosses the
  process boundary.

``execute`` is the single choke point every simulation goes through: it
resolves the kind, times the run, extracts the events-processed counter,
and wraps everything in a :class:`~repro.runner.spec.RunResult`.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from repro.runner.spec import SOURCE_RUN, CellMetrics, RunResult, RunSpec


#: Simulation backends a kind can run on.  "packet" is the per-event
#: engine (repro.sim + repro.net); "fluid" the ODE backend (repro.fluid).
BACKEND_PACKET = "packet"
BACKEND_FLUID = "fluid"


@dataclass(frozen=True)
class KindEntry:
    """One registered experiment kind."""

    name: str
    module: str
    function: str
    #: Attribute of the result object carrying the simulator's
    #: events-processed counter (0 if the result does not expose one).
    #: Fluid kinds count ODE state updates through the same attribute,
    #: so events/sec stays the cross-backend throughput currency.
    events_attr: str = "events"
    #: Which simulation backend executes this kind (telemetry surfaces
    #: it, so mixed packet/fluid campaigns stay distinguishable).
    backend: str = BACKEND_PACKET

    def resolve(self) -> Callable[[Any], Any]:
        return getattr(importlib.import_module(self.module), self.function)


_KINDS: Dict[str, KindEntry] = {}


def register_kind(
    name: str,
    module: str,
    function: str,
    events_attr: str = "events",
    backend: str = BACKEND_PACKET,
) -> None:
    """Register (or re-register) an experiment kind."""
    _KINDS[name] = KindEntry(name, module, function, events_attr, backend)


def backend_of(kind: str) -> str:
    """The simulation backend a registered kind runs on."""
    return kind_entry(kind).backend


def kind_entry(name: str) -> KindEntry:
    try:
        return _KINDS[name]
    except KeyError:
        known = ", ".join(sorted(_KINDS))
        raise KeyError(f"unknown run kind {name!r} (registered: {known})") from None


def registered_kinds() -> Tuple[str, ...]:
    return tuple(sorted(_KINDS))


def events_of(spec: RunSpec, value: Any) -> int:
    """The events-processed count a result carries (0 when untracked)."""
    attr = kind_entry(spec.kind).events_attr
    return int(getattr(value, attr, 0) or 0)


def execute(spec: RunSpec) -> RunResult:
    """Run one spec from scratch, timed. Used inline and by pool workers.

    When validation is requested (a validator is active in-process, or
    ``$REPRO_VALIDATE`` is set — the CLI's ``--validate`` flag, which
    worker processes inherit through the environment), the run executes
    under a fresh :class:`~repro.validate.invariants.Validator` and
    raises :class:`~repro.validate.invariants.InvariantError` on any
    violation, naming the cell.

    When profiling is requested (a profiler is active in-process, or
    ``$REPRO_PROFILE`` / ``$REPRO_TELEMETRY`` is set — the CLI's
    ``--telemetry`` flag, likewise inherited by workers), the run
    executes under a fresh :class:`~repro.obs.profiler.Profiler` and its
    snapshot lands in ``metrics.profile``.  Profiling observes only; the
    result value is byte-identical with and without it.
    """
    from repro.obs import hooks as obs_hooks
    from repro.validate.hooks import validation_requested

    run = kind_entry(spec.kind).resolve()
    checks = 0
    profiler = None
    if obs_hooks.profiling_requested():
        from repro.obs.profiler import Profiler

        profiler = Profiler()
        obs_hooks.activate(profiler)
    started = time.perf_counter()
    try:
        if validation_requested():
            from repro.validate.hooks import activate, deactivate
            from repro.validate.invariants import Validator

            validator = Validator()
            activate(validator)
            try:
                value = run(spec.config)
            finally:
                deactivate(validator)
            validator.finish()
            validator.raise_if_violations(context=spec.label())
            checks = validator.checks
        else:
            value = run(spec.config)
    finally:
        if profiler is not None:
            obs_hooks.deactivate(profiler)
    wall = time.perf_counter() - started
    metrics = CellMetrics(
        wall_time_s=wall,
        events=events_of(spec, value),
        source=SOURCE_RUN,
        invariant_checks=checks,
        profile=profiler.snapshot() if profiler is not None else None,
    )
    return RunResult(spec=spec, value=value, metrics=metrics)


# ----------------------------------------------------------------------
# Built-in kinds: one per single-simulation driver.  The fat-tree kind
# backs every Table 1-3 / Fig. 8-11 view; the testbed/torus/bottleneck
# kinds back Figs. 1/4/6/7.
# ----------------------------------------------------------------------

register_kind("fattree", "repro.experiments.fattree_eval", "_simulate")
register_kind("fig1", "repro.experiments.fig1_convergence", "_simulate")
register_kind("fig4", "repro.experiments.fig4_traffic_shifting", "_simulate")
register_kind("fig6", "repro.experiments.fig6_fairness", "_simulate")
register_kind("fig7", "repro.experiments.fig7_rate_compensation", "_simulate")
register_kind("workload", "repro.experiments.workload_matrix", "_simulate_workload")
register_kind("incast_sweep", "repro.experiments.workload_matrix", "_simulate_incast")
register_kind("fluid", "repro.fluid.backend", "_simulate", backend=BACKEND_FLUID)


__all__ = [
    "BACKEND_FLUID",
    "BACKEND_PACKET",
    "KindEntry",
    "register_kind",
    "backend_of",
    "kind_entry",
    "registered_kinds",
    "events_of",
    "execute",
]
