"""Unidirectional store-and-forward links.

A :class:`Link` models one direction of a cable: packets entering an idle
link begin serialization immediately; otherwise they wait in the link's
egress queue.  When serialization finishes, the packet propagates for
``delay`` seconds and is then delivered to the destination node, and the
next waiting packet (if any) starts serializing.

This is the standard NS-3-style point-to-point model the paper's
simulations used: per-egress-port queue + transmitter + propagation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.sim.units import BitsPerSecond, Seconds

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.sim.engine import Simulator


class Link:
    """One direction of a point-to-point link."""

    __slots__ = (
        "sim",
        "name",
        "src",
        "dst",
        "rate_bps",
        "delay",
        "queue",
        "up",
        "busy",
        "bytes_transmitted",
        "packets_transmitted",
        "bytes_offered",
        "layer",
        "observer",
    )

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        src: "Node",
        dst: "Node",
        rate_bps: BitsPerSecond,
        delay: Seconds,
        queue: Optional[DropTailQueue] = None,
        layer: str = "",
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if delay < 0:
            raise ValueError(f"propagation delay must be >= 0, got {delay}")
        self.sim = sim
        self.name = name
        self.src = src
        self.dst = dst
        self.rate_bps = rate_bps
        self.delay = delay
        self.queue = queue if queue is not None else DropTailQueue()
        self.up = True
        self.busy = False
        self.bytes_transmitted = 0
        self.packets_transmitted = 0
        self.bytes_offered = 0
        self.layer = layer
        #: Validation observer storage (see :mod:`repro.validate`): the
        #: slot lives here so a watched link's generated subclass shares
        #: this layout; the transmit path never consults it.
        self.observer = None

    # ------------------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet to the link; returns ``False`` if dropped.

        A down link silently discards everything (the Fig. 7 "L3 is closed"
        event); senders discover this through their retransmission timers,
        exactly as they would in a real network.
        """
        self.bytes_offered += packet.size
        if not self.up:
            self.queue.stats.dropped += 1
            return False
        if self.busy:
            return self.queue.accept(packet)
        # Idle transmitter: the packet bypasses the queue and starts
        # serializing right away (the queue only ever holds *waiting*
        # packets, which is what the marking threshold is compared to).
        self.busy = True
        self._start_transmission(packet)
        return True

    def set_down(self) -> None:
        """Take the link down, discarding queued packets."""
        self.up = False
        while self.queue.pop() is not None:
            self.queue.stats.dropped += 1

    def set_up(self) -> None:
        """Bring the link back up."""
        self.up = True

    @property
    def occupancy(self) -> int:
        """Waiting packets (the quantity the paper's K is compared to)."""
        return self.queue.occupancy

    def utilization(self, duration: float) -> float:
        """Fraction of capacity used over ``duration`` seconds."""
        if duration <= 0:
            return 0.0
        return min(1.0, self.bytes_transmitted * 8.0 / (self.rate_bps * duration))

    # ------------------------------------------------------------------

    def _start_transmission(self, packet: Packet) -> None:
        tx_time = packet.size * 8.0 / self.rate_bps
        self.sim.schedule(tx_time, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        if self.up:
            self.bytes_transmitted += packet.size
            self.packets_transmitted += 1
            self.sim.schedule(self.delay, self.dst.receive, packet)
        next_packet = self.queue.pop()
        if next_packet is not None and self.up:
            self._start_transmission(next_packet)
        else:
            self.busy = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "DOWN"
        return f"Link({self.name}, {self.rate_bps/1e9:.3f}Gbps, {state})"


__all__ = ["Link"]
