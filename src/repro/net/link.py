"""Unidirectional store-and-forward links.

A :class:`Link` models one direction of a cable: packets entering an idle
link begin serialization immediately; otherwise they wait in the link's
egress queue.  When serialization finishes, the packet propagates for
``delay`` seconds and is then delivered to the destination node, and the
next waiting packet (if any) starts serializing.

This is the standard NS-3-style point-to-point model the paper's
simulations used: per-egress-port queue + transmitter + propagation.

Service modes
-------------

The default **exact mode** schedules one serialization-finish event per
packet, so link state (busy flag, byte counters, queue occupancy) changes
at exactly the instants hardware would change it, and the golden traces
pin its event order bit-for-bit.  Per-packet events go through
:meth:`Simulator.post` — they are never cancelled, so no
:class:`~repro.sim.events.Event` handle is allocated for them.

Opt-in **batched mode** (``Link(batch=N)`` with N > 1, or the
``REPRO_LINK_BATCH`` environment variable for a whole run) drains up to N
queued packets per scheduler event: one train-finished event replaces N
serialization-finish events, with every delivery still posted at its
exact per-packet arrival time.  Queue occupancy then drops in steps of up
to N at train boundaries instead of one per serialization slot, so AQM
marking decisions — and therefore traces — can differ from exact mode;
byte counters are committed at train *start*.  Batched mode also assumes
links stay up mid-train (deliveries are already posted), so failure
experiments (Fig. 7) should keep the exact default.  Use it for
throughput-bound sweeps where per-cell statistics, not per-packet event
order, are the product.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.sim.units import BitsPerSecond, Seconds

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.sim.engine import Simulator


def default_link_batch() -> int:
    """The process-wide default service batch size.

    Reads ``REPRO_LINK_BATCH`` once per link construction (mirroring how
    :mod:`repro.obs.hooks` reads ``REPRO_PROFILE``); unset, empty or
    invalid values mean 1, i.e. exact per-packet service.
    """
    raw = os.environ.get("REPRO_LINK_BATCH", "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        return 1
    return value if value > 1 else 1


class Link:
    """One direction of a point-to-point link."""

    __slots__ = (
        "sim",
        "name",
        "src",
        "dst",
        "rate_bps",
        "delay",
        "queue",
        "up",
        "busy",
        "batch",
        "bytes_transmitted",
        "packets_transmitted",
        "bytes_offered",
        "layer",
        "observer",
        "_deliver",
        "_serve",
    )

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        src: "Node",
        dst: "Node",
        rate_bps: BitsPerSecond,
        delay: Seconds,
        queue: Optional[DropTailQueue] = None,
        layer: str = "",
        batch: Optional[int] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if delay < 0:
            raise ValueError(f"propagation delay must be >= 0, got {delay}")
        self.sim = sim
        self.name = name
        self.src = src
        self.dst = dst
        self.rate_bps = rate_bps
        self.delay = delay
        self.queue = queue if queue is not None else DropTailQueue()
        self.up = True
        self.busy = False
        #: Packets served per scheduler event; 1 = exact per-packet mode.
        self.batch = default_link_batch() if batch is None else max(1, int(batch))
        self.bytes_transmitted = 0
        self.packets_transmitted = 0
        self.bytes_offered = 0
        self.layer = layer
        #: Validation observer storage (see :mod:`repro.validate`): the
        #: slot lives here so a watched link's generated subclass shares
        #: this layout; the exact-mode transmit path never consults it
        #: (the observed subclass wraps ``_finish_transmission``), the
        #: batched path fires ``observer.on_transmit`` per packet itself.
        self.observer = None
        self._deliver = dst.receive
        self._serve = self._finish_transmission

    def _rebind(self) -> None:
        """Refresh the pre-bound hot-path callbacks.

        The transmit path passes two bound methods into
        :meth:`Simulator.post` for every served packet (the destination's
        ``receive`` and this link's ``_finish_transmission``); binding
        them once per link instead of once per packet removes a
        method-object allocation from each post.  Anything that changes
        where those lookups must land — swapping ``__class__`` for a
        validation subclass (:meth:`repro.validate.invariants.SimObserver.
        watch_link`) or replacing ``dst`` — must call this afterwards.
        """
        self._deliver = self.dst.receive
        self._serve = self._finish_transmission

    # ------------------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet to the link; returns ``False`` if dropped.

        A down link silently discards everything (the Fig. 7 "L3 is closed"
        event); senders discover this through their retransmission timers,
        exactly as they would in a real network.
        """
        self.bytes_offered += packet.size
        if not self.up:
            self.queue.stats.dropped += 1
            return False
        if self.busy:
            return self.queue.accept(packet)
        # Idle transmitter: the packet bypasses the queue and starts
        # serializing right away (the queue only ever holds *waiting*
        # packets, which is what the marking threshold is compared to).
        self.busy = True
        if self.batch > 1:
            self._start_train(packet)
        else:
            self.sim.post(
                packet.size * 8.0 / self.rate_bps, self._serve, packet
            )
        return True

    def set_down(self) -> None:
        """Take the link down, discarding queued packets."""
        self.up = False
        while self.queue.pop() is not None:
            self.queue.stats.dropped += 1

    def set_up(self) -> None:
        """Bring the link back up."""
        self.up = True

    @property
    def occupancy(self) -> int:
        """Waiting packets (the quantity the paper's K is compared to)."""
        return self.queue.occupancy

    def utilization(self, duration: float) -> float:
        """Fraction of capacity used over ``duration`` seconds."""
        if duration <= 0:
            return 0.0
        return min(1.0, self.bytes_transmitted * 8.0 / (self.rate_bps * duration))

    # ------------------------------------------------------------------
    # Exact per-packet service (default)
    # ------------------------------------------------------------------

    def _finish_transmission(self, packet: Packet) -> None:
        # The per-packet hot path: serialization start is fused into this
        # handler (and into `enqueue` for idle links) so each served
        # packet costs exactly one callback plus two posts.
        if self.up:
            sim = self.sim
            self.bytes_transmitted += packet.size
            self.packets_transmitted += 1
            sim.post(self.delay, self._deliver, packet)
            next_packet = self.queue.pop()
            if next_packet is not None:
                sim.post(
                    next_packet.size * 8.0 / self.rate_bps,
                    self._serve,
                    next_packet,
                )
                return
            self.busy = False
            return
        self.queue.pop()
        self.busy = False

    # ------------------------------------------------------------------
    # Batched train service (opt-in, see module docstring)
    # ------------------------------------------------------------------

    def _start_train(self, packet: Packet) -> None:
        """Serve up to ``batch`` back-to-back packets in one event.

        Deliveries are posted at each packet's exact serialization-finish
        time plus propagation, so arrival instants match exact mode; only
        the intermediate link/queue state transitions are coalesced.
        """
        sim = self.sim
        inv_rate = 8.0 / self.rate_bps
        delay = self.delay
        receive = self._deliver
        pop = self.queue.pop
        observer = self.observer
        offset = 0.0
        count = 0
        while True:
            offset += packet.size * inv_rate
            self.bytes_transmitted += packet.size
            self.packets_transmitted += 1
            if observer is not None:
                observer.on_transmit(self, packet)
            sim.post(offset + delay, receive, packet)
            count += 1
            if count >= self.batch:
                break
            next_packet = pop()
            if next_packet is None:
                break
            packet = next_packet
        profiler = sim.profiler
        if profiler is not None:
            profiler.on_batch(count)
        sim.post(offset, self._train_finished)

    def _train_finished(self) -> None:
        if not self.up:
            # set_down already drained the queue; deliveries posted before
            # the failure still arrive (see module docstring).
            self.busy = False
            return
        next_packet = self.queue.pop()
        if next_packet is not None:
            self._start_train(next_packet)
        else:
            self.busy = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "DOWN"
        return f"Link({self.name}, {self.rate_bps/1e9:.3f}Gbps, {state})"


__all__ = ["Link", "default_link_batch"]
