"""Packet objects.

A packet is a single slotted object carrying the handful of header fields
the reproduced algorithms actually read:

* ``seq`` / ``ack`` — **segment-granular** sequence numbers.  One DATA
  packet carries one MSS of payload; sequence arithmetic is in whole
  segments, matching how the paper states its window laws ("cwnd changes
  with packet granularity").
* ``ect`` / ``ce`` — the two halves of ECN: the sender declares the packet
  ECN-capable (ECT) and a congested queue sets Congestion Experienced (CE).
  Queues never mark non-ECT packets (they can only drop them), exactly as
  in RFC 3168.
* ``ece_count`` — the paper's two-bit ECE/CWR echo on ACKs: the receiver
  returns the exact number of CE marks (0-3) accumulated since the last
  ACK.  Classic TCP/DCTCP receivers use the same field with their own
  semantics (see :mod:`repro.transport.receiver`).
* ``path`` / ``hop`` — source route: an explicit tuple of links from the
  sender to the destination, with ``hop`` the index of the next link to
  take.  See :mod:`repro.net.routing` for why this stands in for the
  paper's two-level lookup + multi-address trick.
* ``ts`` — sender timestamp, echoed by the receiver as ``ts_echo`` for RTT
  sampling (TCP timestamps, RFC 7323, reduced to its essence).
"""

from __future__ import annotations

from typing import Tuple

DATA = 0
ACK = 1

#: Wire size of a full-MSS data packet (Ethernet payload incl. headers).
DATA_PACKET_BYTES = 1500
#: Wire size of a pure ACK.
ACK_PACKET_BYTES = 40
#: Payload bytes carried by one DATA packet.
MSS_BYTES = 1460


class Packet:
    """One simulated packet; see module docstring for field semantics."""

    __slots__ = (
        "kind",
        "size",
        "flow",
        "subflow",
        "seq",
        "ack",
        "ts",
        "ts_echo",
        "ect",
        "ce",
        "ece_count",
        "sack",
        "path",
        "hop",
    )

    def __init__(
        self,
        kind: int,
        size: int,
        flow: int,
        subflow: int,
        seq: int = 0,
        ack: int = 0,
        ts: float = 0.0,
        ts_echo: float = -1.0,  # -1 = no echo (0.0 is a valid sim time)
        ect: bool = False,
        ce: bool = False,
        ece_count: int = 0,
        sack: Tuple[Tuple[int, int], ...] = (),
        path: Tuple["Link", ...] = (),
        hop: int = 0,
    ) -> None:
        self.kind = kind
        self.size = size
        self.flow = flow
        self.subflow = subflow
        self.seq = seq
        self.ack = ack
        self.ts = ts
        self.ts_echo = ts_echo
        self.ect = ect
        self.ce = ce
        self.ece_count = ece_count
        #: SACK blocks as (first, one-past-last) segment ranges (<= 3, most
        #: recent first), mirroring RFC 2018's three-block option budget.
        self.sack = sack
        self.path = path
        self.hop = hop

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "DATA" if self.kind == DATA else "ACK"
        mark = "+CE" if self.ce else ""
        return (
            f"Packet({kind}{mark}, flow={self.flow}.{self.subflow}, "
            f"seq={self.seq}, ack={self.ack}, hop={self.hop}/{len(self.path)})"
        )


def make_data_packet(
    flow: int,
    subflow: int,
    seq: int,
    now: float,
    path: Tuple["Link", ...],
    ect: bool,
    size: int = DATA_PACKET_BYTES,
) -> Packet:
    """Build a full-MSS data packet stamped with the current time."""
    # Positional arguments throughout: keyword matching costs real time
    # at this call rate (one construction per transmitted segment).
    return Packet(DATA, size, flow, subflow, seq, 0, now, -1.0, ect, False, 0, (), path, 0)


def make_ack_packet(
    flow: int,
    subflow: int,
    ack: int,
    now: float,
    ts_echo: float,
    path: Tuple["Link", ...],
    ece_count: int = 0,
    sack: Tuple[Tuple[int, int], ...] = (),
) -> Packet:
    """Build a pure ACK.  ACKs are never ECN-capable in this model.

    Real stacks mark ACKs non-ECT so that congestion on the reverse path
    cannot be confused with forward-path congestion; we follow suit.
    """
    return Packet(
        ACK, ACK_PACKET_BYTES, flow, subflow, 0, ack, now, ts_echo,
        False, False, ece_count, sack, path, 0,
    )


__all__ = [
    "Packet",
    "DATA",
    "ACK",
    "DATA_PACKET_BYTES",
    "ACK_PACKET_BYTES",
    "MSS_BYTES",
    "make_data_packet",
    "make_ack_packet",
]
