"""Path enumeration and selection.

The paper gives each host multiple addresses and uses the fat tree's
Two-Level Routing Lookup so that different subflows of one MPTCP flow take
different deterministic paths.  The observable consequence — each subflow
pinned to one of the equal-cost paths, single-path flows hashed onto one of
them — is reproduced here by enumerating all shortest paths between two
hosts and pinning each (sub)flow to one at connect time.

Two selection policies cover the paper's setups:

* :class:`EcmpSelector` — hash-based choice, used for single-path schemes
  (TCP, DCTCP); collisions of several flows on one link are possible and
  are exactly what Fig. 11 attributes DCTCP's unbalanced utilization to.
* :class:`DistinctPathSelector` — assigns the subflows of one MPTCP flow to
  distinct equal-cost paths (randomly rotated per flow), reproducing the
  multi-address trick.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Sequence, Tuple

from repro.net.link import Link
from repro.net.node import Node

Path = Tuple[Link, ...]


def enumerate_paths(
    adjacency: Dict[Node, List[Link]],
    src: Node,
    dst: Node,
    max_paths: int = 64,
) -> List[Path]:
    """All shortest paths from ``src`` to ``dst`` as tuples of links.

    Breadth-first search computes hop distances from ``dst``; a depth-first
    walk then follows strictly-decreasing distances, which enumerates every
    shortest path without revisiting.  ``max_paths`` bounds the result for
    very large fabrics.
    """
    if src is dst:
        return [()]
    distance: Dict[Node, int] = {dst: 0}
    frontier = deque([dst])
    reverse_adjacency: Dict[Node, List[Link]] = {}
    for links in adjacency.values():
        for link in links:
            reverse_adjacency.setdefault(link.dst, []).append(link)
    while frontier:
        node = frontier.popleft()
        for link in reverse_adjacency.get(node, ()):  # links INTO node
            neighbor = link.src
            if neighbor not in distance:
                distance[neighbor] = distance[node] + 1
                frontier.append(neighbor)
    if src not in distance:
        return []

    paths: List[Path] = []
    stack: List[Link] = []

    def walk(node: Node) -> None:
        if len(paths) >= max_paths:
            return
        if node is dst:
            paths.append(tuple(stack))
            return
        node_distance = distance.get(node)
        if node_distance is None:
            return
        for link in adjacency.get(node, ()):
            next_distance = distance.get(link.dst)
            if next_distance is not None and next_distance == node_distance - 1:
                stack.append(link)
                walk(link.dst)
                stack.pop()

    walk(src)
    return paths


class PathSelector:
    """Strategy interface: pick paths for the subflows of one flow."""

    def select(
        self, paths: Sequence[Path], flow: int, subflow_count: int
    ) -> List[Path]:
        raise NotImplementedError


class EcmpSelector(PathSelector):
    """Hash-style ECMP: every subflow draws an independent random path.

    A seeded :class:`random.Random` stands in for the 5-tuple hash: distinct
    flows get independent, reproducible choices, and collisions happen at
    the birthday-paradox rate a real ECMP hash would give.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def select(
        self, paths: Sequence[Path], flow: int, subflow_count: int
    ) -> List[Path]:
        if not paths:
            raise ValueError("no paths available")
        return [self._rng.choice(paths) for _ in range(subflow_count)]


class DistinctPathSelector(PathSelector):
    """Give each subflow its own path when enough paths exist.

    Paths are sampled without replacement; if the flow has more subflows
    than paths (e.g. an intra-rack pair has exactly one path), selection
    wraps around, so extra subflows share paths — matching what multiple
    addresses on the same physical topology would do.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def select(
        self, paths: Sequence[Path], flow: int, subflow_count: int
    ) -> List[Path]:
        if not paths:
            raise ValueError("no paths available")
        shuffled = list(paths)
        self._rng.shuffle(shuffled)
        return [shuffled[i % len(shuffled)] for i in range(subflow_count)]


__all__ = [
    "Path",
    "enumerate_paths",
    "PathSelector",
    "EcmpSelector",
    "DistinctPathSelector",
]
