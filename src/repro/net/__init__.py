"""Network model: packets, queues, links, nodes, switches and routing.

The model is deliberately minimal but faithful where the paper's algorithms
care: per-egress-port queues with instantaneous-threshold ECN marking,
store-and-forward links with serialization plus propagation delay, and
source-routed forwarding so each (sub)flow is pinned to an explicit path.
"""

from repro.net.packet import Packet, DATA, ACK
from repro.net.queue import (
    DropTailQueue,
    ThresholdECNQueue,
    REDQueue,
    QueueStats,
)
from repro.net.link import Link
from repro.net.node import Node, Host, Switch
from repro.net.network import Network
from repro.net.routing import (
    PathSelector,
    EcmpSelector,
    DistinctPathSelector,
    enumerate_paths,
)

__all__ = [
    "Packet",
    "DATA",
    "ACK",
    "DropTailQueue",
    "ThresholdECNQueue",
    "REDQueue",
    "QueueStats",
    "Link",
    "Node",
    "Host",
    "Switch",
    "Network",
    "PathSelector",
    "EcmpSelector",
    "DistinctPathSelector",
    "enumerate_paths",
]
