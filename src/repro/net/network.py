"""The :class:`Network` container: nodes, links and path caching.

A ``Network`` owns the simulator plus every node and link, provides the
builder methods topologies use (:meth:`add_host`, :meth:`add_switch`,
:meth:`connect`), and caches shortest-path enumeration between host pairs
(topologies are static for the lifetime of an experiment).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.net.link import Link
from repro.net.node import Host, Node, Switch
from repro.net.queue import DropTailQueue
from repro.net.routing import Path, enumerate_paths
from repro.lint.perf.hooks import active_alloc_monitor
from repro.lint.race.hooks import active_race_monitor
from repro.obs.hooks import active_profiler
from repro.sim.engine import Simulator
from repro.sim.units import BitsPerSecond, Seconds
from repro.validate.hooks import active_validator

QueueFactory = Callable[[], DropTailQueue]


class Network:
    """A static topology plus the simulator it runs on."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}
        self.links: List[Link] = []
        self.adjacency: Dict[Node, List[Link]] = {}
        self._path_cache: Dict[Tuple[str, str], List[Path]] = {}
        self._reverse: Dict[Link, Link] = {}
        self._next_flow_id = 0
        validator = active_validator()
        if validator is not None:
            validator.watch_sim(self.sim)
        profiler = active_profiler()
        if profiler is not None:
            profiler.attach(self.sim)
        race = active_race_monitor()
        if race is not None:
            race.attach(self.sim)
        alloc = active_alloc_monitor()
        if alloc is not None:
            alloc.attach(self.sim)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_host(self, name: str) -> Host:
        """Create and register a host; names must be unique."""
        self._check_name(name)
        host = Host(self.sim, name)
        self.hosts[name] = host
        self.adjacency[host] = []
        return host

    def add_switch(self, name: str) -> Switch:
        """Create and register a switch; names must be unique."""
        self._check_name(name)
        switch = Switch(self.sim, name)
        self.switches[name] = switch
        self.adjacency[switch] = []
        return switch

    def connect(
        self,
        a: Node,
        b: Node,
        rate_bps: BitsPerSecond,
        delay: Seconds,
        queue_factory: Optional[QueueFactory] = None,
        layer: str = "",
    ) -> Tuple[Link, Link]:
        """Create a bidirectional link (two unidirectional :class:`Link`).

        Each direction gets its own queue from ``queue_factory`` (defaults
        to a 100-packet DropTail), so congestion in one direction never
        interferes with the other — as with real full-duplex ports.
        """
        forward = self.add_link(a, b, rate_bps, delay, queue_factory, layer)
        backward = self.add_link(b, a, rate_bps, delay, queue_factory, layer)
        self._reverse[forward] = backward
        self._reverse[backward] = forward
        return forward, backward

    def add_link(
        self,
        src: Node,
        dst: Node,
        rate_bps: BitsPerSecond,
        delay: Seconds,
        queue_factory: Optional[QueueFactory] = None,
        layer: str = "",
    ) -> Link:
        """Create a single unidirectional link from ``src`` to ``dst``."""
        queue = queue_factory() if queue_factory is not None else DropTailQueue()
        name = f"{src.name}->{dst.name}"
        link = Link(self.sim, name, src, dst, rate_bps, delay, queue, layer=layer)
        self.links.append(link)
        self.adjacency.setdefault(src, []).append(link)
        self._path_cache.clear()
        validator = active_validator()
        if validator is not None:
            validator.watch_link(link)
        return link

    def _check_name(self, name: str) -> None:
        if name in self.hosts or name in self.switches:
            raise ValueError(f"duplicate node name: {name}")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        return self.hosts[name]

    def switch(self, name: str) -> Switch:
        """Look up a switch by name."""
        return self.switches[name]

    def paths(self, src: str, dst: str, max_paths: int = 64) -> List[Path]:
        """All shortest paths between two hosts, cached."""
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is None:
            cached = enumerate_paths(
                self.adjacency, self.hosts[src], self.hosts[dst], max_paths
            )
            self._path_cache[key] = cached
        return cached

    def reverse_of(self, link: Link) -> Link:
        """The opposite direction of a link created with :meth:`connect`."""
        try:
            return self._reverse[link]
        except KeyError:
            raise ValueError(
                f"link {link.name} has no reverse; use connect() for "
                "bidirectional links"
            ) from None

    def reverse_path(self, path: Path) -> Path:
        """The hop-by-hop reverse of a forward path (for ACKs)."""
        return tuple(self.reverse_of(link) for link in reversed(path))

    def set_link_pair_down(self, link: Link) -> None:
        """Take both directions of a link down (Fig. 7's 'L3 is closed')."""
        link.set_down()
        self.reverse_of(link).set_down()

    def set_link_pair_up(self, link: Link) -> None:
        """Bring both directions of a link back up."""
        link.set_up()
        self.reverse_of(link).set_up()

    def next_flow_id(self) -> int:
        """Allocate a network-unique flow identifier."""
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        return flow_id

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def links_by_layer(self, layer: str) -> List[Link]:
        """All links tagged with ``layer`` (see topology builders)."""
        return [link for link in self.links if link.layer == layer]

    def total_dropped(self) -> int:
        """Total packets dropped across every queue."""
        return sum(link.queue.stats.dropped for link in self.links)

    def total_marked(self) -> int:
        """Total packets CE-marked across every queue."""
        return sum(link.queue.stats.marked for link in self.links)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Network(hosts={len(self.hosts)}, switches={len(self.switches)}, "
            f"links={len(self.links)})"
        )


__all__ = ["Network", "QueueFactory"]
