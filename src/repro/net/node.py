"""Nodes: hosts and switches.

Forwarding is source-routed: every packet carries the full tuple of links
it will traverse, and each node simply pushes it onto ``path[hop]``.  A
:class:`Switch` therefore does O(1) work per packet.  :class:`Host` nodes
terminate packets and hand them to the transport demultiplexer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Tuple

from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.sim.engine import Simulator


class Node:
    """Base class for anything a link can deliver packets to."""

    __slots__ = ("sim", "name")

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name

    def receive(self, packet: Packet) -> None:
        raise NotImplementedError

    def forward(self, packet: Packet) -> bool:
        """Push ``packet`` onto its next source-routed hop.

        Returns ``False`` when the packet was dropped (queue overflow or a
        downed link), which callers may use for accounting; senders learn
        about drops only through missing ACKs.
        """
        hop = packet.hop
        if hop >= len(packet.path):
            raise RuntimeError(  # simperf: allow-alloc(unreachable error path)
                f"{self.name}: packet has no next hop ({packet!r})"  # simperf: allow-alloc(error path)
            )
        link = packet.path[hop]
        packet.hop = hop + 1
        return link.enqueue(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name})"


class Switch(Node):
    """A source-routing switch: look at ``packet.path[hop]``, enqueue, done."""

    __slots__ = ("packets_forwarded",)

    def __init__(self, sim: "Simulator", name: str) -> None:
        super().__init__(sim, name)
        self.packets_forwarded = 0

    def receive(self, packet: Packet) -> None:
        # `forward` inlined: switches see every transit packet, so the
        # extra frame is measurable on fat-tree cells.
        self.packets_forwarded += 1
        hop = packet.hop
        path = packet.path
        if hop >= len(path):
            raise RuntimeError(  # simperf: allow-alloc(unreachable error path)
                f"{self.name}: packet has no next hop ({packet!r})"  # simperf: allow-alloc(error path)
            )
        packet.hop = hop + 1
        link = path[hop]
        if link.busy and link.up:
            # The busy-transmitter branch of Link.enqueue, inlined: on a
            # loaded fabric most transit packets take it, and the saved
            # frame is measurable.  Everything else (idle transmitter,
            # downed link, batched trains) falls through to the real
            # method, which redoes its own offered-bytes accounting.
            link.bytes_offered += packet.size
            link.queue.accept(packet)
            return
        link.enqueue(packet)


class Host(Node):
    """An end host terminating transport endpoints.

    Transport endpoints register per ``(flow, subflow)`` key; each received
    packet is dispatched to the matching endpoint's ``receive``.  Packets
    with no registered endpoint are counted and discarded (they can occur
    legitimately when a flow finishes while its last ACKs are in flight).
    """

    __slots__ = ("_endpoints", "packets_delivered", "packets_unclaimed")

    def __init__(self, sim: "Simulator", name: str) -> None:
        super().__init__(sim, name)
        self._endpoints: Dict[Tuple[int, int], Callable[[Packet], None]] = {}
        self.packets_delivered = 0
        self.packets_unclaimed = 0

    def register(
        self, flow: int, subflow: int, handler: Callable[[Packet], None]
    ) -> None:
        """Bind ``handler`` to packets for ``(flow, subflow)``."""
        key = (flow, subflow)
        if key in self._endpoints:
            raise ValueError(f"{self.name}: endpoint {key} already registered")
        self._endpoints[key] = handler

    def unregister(self, flow: int, subflow: int) -> None:
        """Remove an endpoint binding; missing bindings are ignored."""
        self._endpoints.pop((flow, subflow), None)

    def receive(self, packet: Packet) -> None:
        if packet.hop < len(packet.path):
            # Hosts can also relay (multihomed testbed nodes).
            self.forward(packet)
            return
        handler = self._endpoints.get((packet.flow, packet.subflow))  # simperf: allow-alloc(dict-key tuple; no interning possible)
        if handler is None:
            self.packets_unclaimed += 1
            return
        self.packets_delivered += 1
        handler(packet)

    def send(self, packet: Packet) -> bool:
        """Inject a locally generated packet onto its first hop."""
        # `forward` inlined: every transmitted segment and ACK enters the
        # network here, so the extra frame is measurable.
        hop = packet.hop
        path = packet.path
        if hop >= len(path):
            raise RuntimeError(
                f"{self.name}: packet has no next hop ({packet!r})"
            )
        packet.hop = hop + 1
        return path[hop].enqueue(packet)


__all__ = ["Node", "Switch", "Host"]
