"""Egress-port queues and AQM.

Three queue disciplines are provided:

* :class:`DropTailQueue` — plain FIFO with a packet-count cap.
* :class:`ThresholdECNQueue` — the paper's marking rule (BOS step 1 /
  DCTCP-style): *mark the arriving ECT packet with CE when the
  instantaneous queue length exceeds K packets*.  Non-ECT packets pass
  unmarked and are only dropped on overflow.
* :class:`REDQueue` — classic RED with an EWMA average queue, kept for the
  ablation that motivates the paper's §2.1 argument against averaged-queue
  marking in DCNs.

Marking convention: the arriving packet is marked when the number of
packets already waiting is ``>= K`` (equivalently, the queue length
*including* the arrival is ``> K``, the paper's phrasing).  The packet
currently being serialized on the link is *not* counted, matching the
NS-3 model the authors used (device holds the in-flight packet, queue
holds the waiting ones).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.net.packet import Packet


class QueueStats:
    """Counters every queue keeps; cheap enough to be always on."""

    __slots__ = (
        "enqueued",
        "dequeued",
        "dropped",
        "marked",
        "max_occupancy",
    )

    def __init__(self) -> None:
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.marked = 0
        self.max_occupancy = 0

    def snapshot(self) -> dict:
        """Return the counters as a plain dict (for reports and tests)."""
        return {
            "enqueued": self.enqueued,
            "dequeued": self.dequeued,
            "dropped": self.dropped,
            "marked": self.marked,
            "max_occupancy": self.max_occupancy,
        }


class DropTailQueue:
    """FIFO queue with a hard capacity in packets."""

    __slots__ = ("capacity", "_buffer", "stats", "observer")

    def __init__(self, capacity: int = 100) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: Deque[Packet] = deque()
        self.stats = QueueStats()
        #: Validation observer storage (see :mod:`repro.validate`): the
        #: slot lives here so a watched queue's generated subclass shares
        #: this layout; the hot paths below never consult it.
        self.observer = None

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def occupancy(self) -> int:
        """Number of packets currently waiting."""
        return len(self._buffer)

    def accept(self, packet: Packet) -> bool:
        """Enqueue ``packet``; return ``False`` when it was dropped."""
        buffer = self._buffer
        occupancy = len(buffer)
        stats = self.stats
        if occupancy >= self.capacity:
            stats.dropped += 1
            return False
        self._mark(packet, occupancy)
        buffer.append(packet)
        stats.enqueued += 1
        occupancy += 1
        if occupancy > stats.max_occupancy:
            stats.max_occupancy = occupancy
        return True

    def pop(self) -> Optional[Packet]:
        """Dequeue the head packet, or ``None`` when empty."""
        buffer = self._buffer
        if not buffer:
            return None
        self.stats.dequeued += 1
        return buffer.popleft()

    def _mark(self, packet: Packet, occupancy_before: int) -> None:
        """Hook for subclasses; DropTail never marks."""


class ThresholdECNQueue(DropTailQueue):
    """The paper's packet-marking rule: CE when instantaneous queue > K."""

    __slots__ = ("threshold",)

    def __init__(self, capacity: int = 100, threshold: int = 10) -> None:
        super().__init__(capacity)
        if threshold < 0:
            raise ValueError(f"marking threshold must be >= 0, got {threshold}")
        self.threshold = threshold

    def _mark(self, packet: Packet, occupancy_before: int) -> None:
        if packet.ect and occupancy_before >= self.threshold:
            packet.ce = True
            self.stats.marked += 1


class REDQueue(DropTailQueue):
    """Classic RED (Floyd & Jacobson) with ECN marking.

    Kept for the ablation contrasting averaged-queue marking against the
    paper's instantaneous rule.  With ``weight=1.0`` and
    ``min_threshold == max_threshold == K`` this collapses to (almost) the
    instantaneous rule — the two configuration "tricks" the paper applies
    to DummyNet/hardware RED in §3.
    """

    __slots__ = (
        "min_threshold",
        "max_threshold",
        "max_probability",
        "weight",
        "avg",
        "_rng",
        "_count_since_mark",
    )

    def __init__(
        self,
        capacity: int = 100,
        min_threshold: int = 5,
        max_threshold: int = 15,
        max_probability: float = 0.1,
        weight: float = 0.002,
        rng=None,
    ) -> None:
        super().__init__(capacity)
        if not 0 < weight <= 1.0:
            raise ValueError(f"EWMA weight must be in (0, 1], got {weight}")
        if min_threshold > max_threshold:
            raise ValueError("min_threshold must be <= max_threshold")
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.max_probability = max_probability
        self.weight = weight
        self.avg = 0.0
        self._rng = rng
        self._count_since_mark = 0

    def _mark_probability(self) -> float:
        """RED's piecewise-linear marking probability for the current avg."""
        if self.avg < self.min_threshold:
            return 0.0
        if self.avg >= self.max_threshold:
            return 1.0
        span = self.max_threshold - self.min_threshold
        if span == 0:
            return 1.0
        return self.max_probability * (self.avg - self.min_threshold) / span

    def _mark(self, packet: Packet, occupancy_before: int) -> None:
        self.avg += self.weight * (occupancy_before - self.avg)
        if not packet.ect:
            return
        probability = self._mark_probability()
        if probability <= 0.0:
            self._count_since_mark = 0
            return
        if probability >= 1.0:
            packet.ce = True
            self.stats.marked += 1
            self._count_since_mark = 0
            return
        # Uniformized marking (gentle RED): probability grows with the run
        # of unmarked packets, avoiding geometric clustering of marks.
        self._count_since_mark += 1
        effective = probability / max(
            1e-9, 1.0 - self._count_since_mark * probability
        )
        draw = self._rng.random() if self._rng is not None else 0.5
        if draw < effective:
            packet.ce = True
            self.stats.marked += 1
            self._count_since_mark = 0


__all__ = ["QueueStats", "DropTailQueue", "ThresholdECNQueue", "REDQueue"]
