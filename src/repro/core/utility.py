"""The closed-form model behind XMP: paper Eqs. 1-9.

These functions are used three ways:

* by experiments, to derive the marking threshold ``K`` from ``beta`` and
  the path BDP (Eq. 1), as the paper does for Fig. 7;
* by tests, to check the simulator's equilibria against the fluid model
  (Eq. 3's marking probability, Eq. 9's delta fixed point);
* as executable documentation of §2's derivation (utility functions,
  concavity, the Congestion Equality Principle).
"""

from __future__ import annotations

import math
from typing import Sequence


def min_marking_threshold(bdp_packets: float, beta: float) -> float:
    """Eq. 1 — the smallest K that keeps the link busy through a 1/beta cut.

    ``(K + BDP)/beta <= K``  ⇒  ``K >= BDP/(beta - 1)``, ``beta >= 2``.
    """
    if beta < 2:
        raise ValueError(f"Eq. 1 requires beta >= 2, got {beta}")
    if bdp_packets < 0:
        raise ValueError(f"BDP must be >= 0, got {bdp_packets}")
    return bdp_packets / (beta - 1.0)


def equilibrium_marking_probability(
    window: float, delta: float, beta: float
) -> float:
    """Eq. 3 — per-round marking probability at the BOS equilibrium.

    ``p = 1 / (1 + w / (delta * beta))`` where ``w`` is the equilibrium
    window.  Derived by zeroing Eq. 2's drift.
    """
    if window < 0 or delta <= 0 or beta <= 0:
        raise ValueError("window must be >= 0 and delta, beta positive")
    return 1.0 / (1.0 + window / (delta * beta))


def equilibrium_window(p: float, delta: float, beta: float) -> float:
    """Invert Eq. 3: the window at which marking probability ``p`` balances.

    Equivalently TraSh step 2's rate-convergence condition rearranged:
    ``x = beta*delta*(1-p)/(T*p)`` times T.
    """
    if not 0 < p <= 1:
        raise ValueError(f"p must be in (0, 1], got {p}")
    return delta * beta * (1.0 - p) / p


def bos_utility(x: float, rtt: float, beta: float, delta: float = 1.0) -> float:
    """Eq. 4 — the utility function BOS maximizes for one path.

    ``U(x) = (delta*beta/T) * log(1 + T*x/(delta*beta))``.
    """
    if x < 0 or rtt <= 0 or beta <= 0 or delta <= 0:
        raise ValueError("x must be >= 0 and rtt, beta, delta positive")
    scale = delta * beta / rtt
    return scale * math.log(1.0 + x / scale)


def xmp_utility(total_rate: float, min_rtt: float, beta: float) -> float:
    """Eq. 6 — the flow-level utility XMP maximizes.

    ``U(y) = (beta/T_s) * log(1 + T_s*y/beta)`` with
    ``T_s = min_r T_{s,r}``.
    """
    return bos_utility(total_rate, min_rtt, beta, delta=1.0)


def xmp_expected_congestion(total_rate: float, min_rtt: float, beta: float) -> float:
    """Eq. 7 — ``U'(y) = 1 / (1 + y*T_s/beta)``.

    Interpreted as the congestion a flow *should* see on a virtual single
    path carrying all its traffic.
    """
    if total_rate < 0 or min_rtt <= 0 or beta <= 0:
        raise ValueError("rate must be >= 0 and rtt, beta positive")
    return 1.0 / (1.0 + total_rate * min_rtt / beta)


def subflow_equilibrium_probability(
    rate: float, rtt: float, delta: float, beta: float
) -> float:
    """Eq. 8 — per-subflow equilibrium marking probability.

    ``p_r = 1 / (1 + x_r*T_r/(delta_r*beta))``.
    """
    if rate < 0 or rtt <= 0 or delta <= 0 or beta <= 0:
        raise ValueError("rate must be >= 0 and rtt, delta, beta positive")
    return 1.0 / (1.0 + rate * rtt / (delta * beta))


def trash_delta(rate: float, rtt: float, total_rate: float, min_rtt: float) -> float:
    """Eq. 9 — the TraSh fixed point ``delta = (T_r*x_r)/(T_s*y_s)``."""
    if total_rate <= 0 or min_rtt <= 0:
        raise ValueError("total rate and min rtt must be positive")
    if rate < 0 or rtt <= 0:
        raise ValueError("rate must be >= 0 and rtt positive")
    return (rtt * rate) / (min_rtt * total_rate)


def trash_step(
    rates: Sequence[float], rtts: Sequence[float]
) -> list:
    """One TraSh Parameter Adjustment step over all subflows of a flow.

    Given converged per-subflow rates and RTTs, return the next deltas
    (TraSh step 3).  Used by tests to verify Proposition 1 — the update
    raises delta exactly on subflows whose congestion is below the flow's
    expected congestion.
    """
    if len(rates) != len(rtts):
        raise ValueError("rates and rtts must have the same length")
    if not rates:
        return []
    total = sum(rates)
    min_rtt = min(rtts)
    return [trash_delta(x, t, total, min_rtt) for x, t in zip(rates, rtts)]


__all__ = [
    "min_marking_threshold",
    "equilibrium_marking_probability",
    "equilibrium_window",
    "bos_utility",
    "xmp_utility",
    "xmp_expected_congestion",
    "subflow_equilibrium_probability",
    "trash_delta",
    "trash_step",
]
