"""Fluid-model integration of the paper's Eq. 2.

The paper derives BOS's equilibrium (Eq. 3) from the window ODE

.. math::

    \\frac{dw(t)}{dt} = \\frac{\\delta}{T}(1 - p(t))
                        - \\frac{w(t)}{T\\beta} p(t)

This module integrates that ODE — for one flow against a given marking
probability, and for N flows sharing one marked link with the queue and
marking process modelled explicitly — so the packet-level simulator can
be validated against the model it was designed from (see
``benchmarks/test_ablation_fluid.py`` and the tests).

The shared-link model: windows ``w_i`` evolve per Eq. 2; the queue
integrates ``sum_i w_i/T_i - C`` (never below zero); the *round-trip
time* seen by every flow is ``T_i = base_rtt_i + q/C`` (queueing delay);
and the per-round marking probability rises steeply once the queue
crosses K — we use the probability that an M/D/1-ish instantaneous queue
exceeds K, approximated by a logistic in ``(q - K)`` whose width is a
couple of packets, which matches the threshold rule's behaviour in the
packet simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Sequence

#: Packet size used to convert packets <-> bits (paper: 1500 B MTU).
PACKET_BITS = 1500 * 8

#: Default sampling stride of :func:`integrate_shared_link`: one recorded
#: sample per this many Euler steps.  The final step is always recorded
#: regardless of stride, so ``steady_state_*`` tail means never miss the
#: terminal state.
SAMPLE_STRIDE = 16


def step_count(duration: float, dt: float) -> int:
    """Number of Euler steps covering ``duration`` at step ``dt``.

    ``int(duration / dt)`` truncates: ``0.3 / 1e-4`` is
    ``2999.9999999999995`` in binary floating point, so the naive form
    silently drops the last step and shortens the horizon.  Rounding to
    the nearest integer recovers the intended count whenever ``duration``
    is an (exact or nearly exact) multiple of ``dt``; integrators always
    take at least one step.
    """
    if duration <= 0 or dt <= 0:
        raise ValueError("duration and dt must be positive")
    return max(1, int(round(duration / dt)))


def bos_window_ode(
    w: float, p: float, delta: float, beta: float, rtt: float
) -> float:
    """Right-hand side of Eq. 2: dw/dt given marking probability ``p``."""
    if rtt <= 0:
        raise ValueError(f"rtt must be positive, got {rtt}")
    return (delta / rtt) * (1.0 - p) - (w / (rtt * beta)) * p


def integrate_single_flow(
    p_of_t: Callable[[float], float],
    duration: float,
    dt: float = 1e-4,
    w0: float = 1.0,
    delta: float = 1.0,
    beta: float = 4.0,
    rtt: float = 100e-6,
) -> List[float]:
    """Euler-integrate Eq. 2 for one flow against a marking schedule.

    Returns the window trajectory sampled at every step.  At a constant
    ``p`` the trajectory converges to Eq. 3's fixed point
    ``w* = delta*beta*(1-p)/p``.
    """
    steps = step_count(duration, dt)
    w = w0
    trajectory = []
    for i in range(steps):
        t = i * dt
        p = p_of_t(t)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"marking probability out of range: {p}")
        w += dt * bos_window_ode(w, p, delta, beta, rtt)
        w = max(w, 1.0)
        trajectory.append(w)
    return trajectory


def threshold_marking_probability(
    queue_packets: float, threshold: float, width: float = 2.0
) -> float:
    """Smooth stand-in for 'at least one mark this round' near a K-queue.

    Below ``K`` the instantaneous queue rarely crosses the threshold
    within a round; above it, almost every round sees a mark.  A logistic
    of width ~2 packets reproduces that knife edge while keeping the ODE
    well behaved.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return 1.0 / (1.0 + math.exp(-(queue_packets - threshold) / width))


def _check_tail_fraction(tail_fraction: float) -> None:
    """Tail means need a non-empty tail: require ``0 < fraction <= 1``.

    ``tail_fraction=0.0`` used to slice an empty tail and silently
    average it to 0.0; out-of-range fractions were accepted and produced
    nonsense slices.  Both are caller bugs, so they raise.
    """
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError(
            f"tail_fraction must be in (0, 1], got {tail_fraction}"
        )


def _tail_start(length: int, tail_fraction: float) -> int:
    """First index of the trailing window; always leaves >= 1 sample."""
    return min(int(length * (1.0 - tail_fraction)), length - 1)


def tail_mean(values: Sequence[float], tail_fraction: float = 0.3) -> float:
    """Mean of the trailing ``tail_fraction`` of a non-empty series.

    The steady-state reduction every fluid result uses: validated
    ``tail_fraction`` (see :func:`_check_tail_fraction`), and the window
    always contains at least the final sample.
    """
    _check_tail_fraction(tail_fraction)
    if not values:
        raise ValueError("tail_mean needs a non-empty series")
    start = _tail_start(len(values), tail_fraction)
    return sum(values[start:]) / (len(values) - start)


@dataclass
class FluidLinkResult:
    """Trajectories from :func:`integrate_shared_link`."""

    times: List[float] = field(default_factory=list)
    windows: List[List[float]] = field(default_factory=list)  # per flow
    queue: List[float] = field(default_factory=list)

    def steady_state_windows(self, tail_fraction: float = 0.3) -> List[float]:
        """Mean window per flow over the trailing ``tail_fraction``."""
        _check_tail_fraction(tail_fraction)
        if not self.times:
            return []
        start = _tail_start(len(self.times), tail_fraction)
        return [
            sum(series[start:]) / (len(series) - start)
            for series in self.windows
        ]

    def steady_state_queue(self, tail_fraction: float = 0.3) -> float:
        """Mean queue over the trailing ``tail_fraction`` (packets)."""
        _check_tail_fraction(tail_fraction)
        if not self.queue:
            return 0.0
        start = _tail_start(len(self.queue), tail_fraction)
        return sum(self.queue[start:]) / (len(self.queue) - start)


def integrate_shared_link(
    num_flows: int,
    capacity_bps: float,
    base_rtt: float,
    threshold: float,
    duration: float,
    dt: float = 2e-5,
    beta: float = 4.0,
    deltas: Sequence[float] = (),
    w0: float = 2.0,
    sample_stride: int = SAMPLE_STRIDE,
) -> FluidLinkResult:
    """N BOS flows sharing one marked link, in the fluid limit.

    Windows follow Eq. 2; the queue integrates excess arrival; RTTs are
    base propagation plus queueing delay; marking follows
    :func:`threshold_marking_probability`.  Trajectories are sampled
    every ``sample_stride`` steps, plus the final step unconditionally.
    """
    if num_flows < 1:
        raise ValueError("need at least one flow")
    if capacity_bps <= 0 or base_rtt <= 0:
        raise ValueError("capacity and base_rtt must be positive")
    if sample_stride < 1:
        raise ValueError(f"sample_stride must be >= 1, got {sample_stride}")
    flow_deltas = list(deltas) if deltas else [1.0] * num_flows
    if len(flow_deltas) != num_flows:
        raise ValueError("deltas must match num_flows")

    capacity_pps = capacity_bps / PACKET_BITS
    windows = [w0] * num_flows
    queue = 0.0
    result = FluidLinkResult(windows=[[] for _ in range(num_flows)])
    steps = step_count(duration, dt)
    for i in range(steps):
        rtt = base_rtt + queue / capacity_pps
        p = threshold_marking_probability(queue, threshold)
        arrival = 0.0
        for f in range(num_flows):
            arrival += windows[f] / rtt
            windows[f] += dt * bos_window_ode(
                windows[f], p, flow_deltas[f], beta, rtt
            )
            windows[f] = max(windows[f], 1.0)
        queue = max(0.0, queue + dt * (arrival - capacity_pps))
        if i % sample_stride == 0 or i == steps - 1:
            result.times.append(i * dt)
            result.queue.append(queue)
            for f in range(num_flows):
                result.windows[f].append(windows[f])
    return result


__all__ = [
    "PACKET_BITS",
    "SAMPLE_STRIDE",
    "step_count",
    "tail_mean",
    "bos_window_ode",
    "integrate_single_flow",
    "threshold_marking_probability",
    "FluidLinkResult",
    "integrate_shared_link",
]
