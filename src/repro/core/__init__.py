"""The paper's contribution: BOS, TraSh and their composition XMP.

* :mod:`repro.core.bos` — Buffer Occupancy Suppression, the per-subflow
  ECN window law (paper §2.1, Algorithm 1).
* :mod:`repro.core.trash` — Traffic Shifting, the coupling that tunes each
  subflow's growth parameter ``delta`` (paper §2.2).
* :mod:`repro.core.utility` — the closed-form model behind both: Eqs. 1-9
  (marking-threshold bound, equilibrium marking probability, utility
  functions, the TraSh fixed point).
"""

from repro.core.bos import BosCC
from repro.core.trash import TraSh
from repro.core import analysis, fluid, utility

__all__ = ["BosCC", "TraSh", "utility", "fluid", "analysis"]
