"""Closed-form sawtooth analysis of BOS — the paper's §7 future work.

The paper chooses (β, K) from Eq. 1 plus engineering judgement and defers
"a deeper understanding on these impacts" to "further theoretical
analysis".  For a single BOS flow on one marked link that analysis is
tractable in closed form, and this module provides it:

The steady state is a deterministic sawtooth.  The window grows by δ per
round until the standing queue ``w − BDP`` crosses K, which marks a
packet; one round later the sender cuts by 1/β:

* peak window     ``w_max ≈ BDP + K``  (plus the one-round overshoot δ),
* trough window   ``w_min = (1 − 1/β) · w_max``,
* cycle length    ``(w_max − w_min)/δ`` rounds.

From the sawtooth follow the three quantities the paper trades off —
utilization, mean queue (latency) and the marking period — so the whole
(β, K) plane can be mapped without simulating, and the simulator can be
checked against the map (see ``tests/test_core_analysis.py``).

Accuracy: the model treats the queue as instantaneously ``w − BDP`` and
the cut as acting exactly one round after the threshold crossing.  The
packet system's feedback lag and ACK clocking drain the queue somewhat
deeper after each cut, so near the Eq. 1 boundary the prediction is an
*upper bound* on utilization (measured ≈ 0.92 where the model says 1.00
for β=2 at K just over the bound) and mean queue runs ~2 packets below
the prediction.  Away from the boundary agreement is within a few
percent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.utility import min_marking_threshold


@dataclass(frozen=True)
class SawtoothPrediction:
    """Closed-form steady state of one BOS flow on one marked link."""

    bdp_packets: float
    threshold: float
    beta: float
    delta: float
    w_max: float
    w_min: float
    cycle_rounds: float
    utilization: float
    mean_queue_packets: float

    @property
    def meets_eq1(self) -> bool:
        """Whether K satisfies Eq. 1's full-utilization bound."""
        return self.threshold >= min_marking_threshold(self.bdp_packets, self.beta)


def predict_sawtooth(
    bdp_packets: float,
    threshold: float,
    beta: float,
    delta: float = 1.0,
) -> SawtoothPrediction:
    """Predict the BOS steady-state sawtooth for one flow on one link."""
    if bdp_packets <= 0:
        raise ValueError(f"BDP must be positive, got {bdp_packets}")
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    if beta < 2:
        raise ValueError(f"beta must be >= 2, got {beta}")
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")

    # The queue first exceeds K when w > BDP + K; the mark is fed back and
    # acted on about one round later, during which the window grew delta.
    w_max = bdp_packets + threshold + delta
    w_min = max((1.0 - 1.0 / beta) * w_max, 2.0)
    cycle = max((w_max - w_min) / delta, 1.0)

    utilization = _sawtooth_utilization(w_min, w_max, bdp_packets)
    mean_queue = _sawtooth_mean_queue(w_min, w_max, bdp_packets)
    return SawtoothPrediction(
        bdp_packets=bdp_packets,
        threshold=threshold,
        beta=beta,
        delta=delta,
        w_max=w_max,
        w_min=w_min,
        cycle_rounds=cycle,
        utilization=utilization,
        mean_queue_packets=mean_queue,
    )


def _sawtooth_utilization(w_min: float, w_max: float, bdp: float) -> float:
    """Average of ``min(w, BDP)/BDP`` over the linear ramp w_min -> w_max."""
    if w_max <= w_min:
        return min(w_max / bdp, 1.0)
    if w_min >= bdp:
        return 1.0
    ramp = w_max - w_min
    if w_max <= bdp:
        # Never reaches capacity: average window over BDP.
        return (w_min + w_max) / (2.0 * bdp)
    below = (bdp - w_min) / ramp  # fraction of the cycle under capacity
    average_below = (w_min + bdp) / (2.0 * bdp)
    return below * average_below + (1.0 - below)


def _sawtooth_mean_queue(w_min: float, w_max: float, bdp: float) -> float:
    """Average of ``max(w - BDP, 0)`` over the linear ramp w_min -> w_max."""
    if w_max <= bdp:
        return 0.0
    if w_max <= w_min:
        return max(w_max - bdp, 0.0)
    ramp = w_max - w_min
    start = max(w_min, bdp)
    above = (w_max - start) / ramp  # fraction of the cycle with a queue
    average_above = (start - bdp + w_max - bdp) / 2.0
    return above * average_above


def utilization_map(
    bdp_packets: float,
    betas,
    thresholds,
    delta: float = 1.0,
):
    """Predictions over a (β, K) grid — the §7 'deeper understanding'.

    Returns ``{(beta, threshold): SawtoothPrediction}``.
    """
    return {
        (beta, threshold): predict_sawtooth(bdp_packets, threshold, beta, delta)
        for beta in betas
        for threshold in thresholds
    }


def marking_period_seconds(prediction: SawtoothPrediction, rtt: float) -> float:
    """Wall-clock time between window cuts at steady state."""
    if rtt <= 0:
        raise ValueError(f"rtt must be positive, got {rtt}")
    return prediction.cycle_rounds * rtt


__all__ = [
    "SawtoothPrediction",
    "predict_sawtooth",
    "utilization_map",
    "marking_period_seconds",
]
