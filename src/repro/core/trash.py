"""TraSh — Traffic Shifting (paper §2.2).

TraSh couples the subflows of one MPTCP flow by recomputing each subflow's
growth parameter once per round:

.. math::

    \\delta_{s,r} = \\frac{T_{s,r} \\cdot x_{s,r}}{T_s \\cdot y_s}
                  = \\frac{cwnd_r}{total\\_rate \\cdot min\\_rtt}

(Eq. 9; the second form is Algorithm 1's ``delta[r]``, using
``x_{s,r} = cwnd_r / srtt_r`` so that ``T_{s,r} x_{s,r} = cwnd_r``).

Because :math:`\\delta_{s,r}` shrinks on paths whose share of the total
rate is small relative to their RTT (more congested → smaller window →
smaller rate) and grows on less congested ones, each flow drifts toward
equalizing the congestion it perceives across its paths — the paper's
Congestion Equality Principle (Proposition 1).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.bos import BosCC
from repro.sim.units import Seconds


def trash_delta(
    cwnd: float,
    total_rate: float,
    min_rtt: Seconds,
    weight: float = 1.0,
) -> float:
    """Eq. 9 / Algorithm 1 as a pure formula: ``w * cwnd / (y_s * T_s)``.

    ``cwnd`` and ``total_rate`` must share a size unit (packets with
    packets/s, or bytes with bytes/s) — delta is dimensionless.  Shared
    by the packet-level :class:`TraSh` and the fluid backend's XMP law
    (:mod:`repro.fluid.laws`), so the two backends cannot drift apart on
    the coupling formula.  Falls back to the uncoupled ``weight`` until
    both quantities are measurable.
    """
    if total_rate <= 0.0 or min_rtt <= 0.0:
        return weight
    return weight * cwnd / (total_rate * min_rtt)


class TraSh:
    """The coupling state shared by all subflows of one XMP flow.

    ``weight`` scales every subflow's delta uniformly: since a BOS flow's
    equilibrium window is proportional to its delta (Eq. 3), a flow with
    weight w converges to w shares of each bottleneck relative to
    weight-1 flows — bandwidth differentiation through the same knob
    TraSh already turns (an extension; the paper uses weight 1).
    """

    def __init__(self, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.weight = weight
        self._controllers: List[BosCC] = []

    def make_controller(self, beta: float) -> BosCC:
        """Create a BOS controller whose delta this TraSh instance tunes."""
        controller = BosCC(beta=beta, delta_provider=self.delta)
        self._controllers.append(controller)
        return controller

    @property
    def controllers(self) -> List[BosCC]:
        return list(self._controllers)

    # ------------------------------------------------------------------

    def total_rate(self) -> float:
        """Sum of ``instant_rate`` over subflows with an RTT estimate."""
        total = 0.0
        for controller in self._controllers:
            sender = controller.sender
            if sender is not None and sender.running and not sender.completed:
                total += sender.instant_rate
        return total

    def min_rtt(self) -> Optional[float]:
        """``min{srtt_r}`` over active subflows (the paper's ``T_s``)."""
        best: Optional[float] = None
        for controller in self._controllers:
            sender = controller.sender
            if sender is None or not sender.running or sender.completed:
                continue
            srtt = sender.srtt
            if srtt is not None and srtt > 0 and (best is None or srtt < best):
                best = srtt
        return best

    def delta(self, controller: BosCC, now: float) -> float:
        """Eq. 9 / Algorithm 1: ``delta[r] = cwnd[r] / (total_rate * min_rtt)``.

        Falls back to the uncoupled value 1.0 until every quantity is
        measurable (TraSh initialization step 1 sets ``delta = 1``).
        """
        sender = controller.sender
        if sender is None:
            return self.weight
        total = self.total_rate()
        min_rtt = self.min_rtt()
        if min_rtt is None:
            return self.weight
        return trash_delta(sender.cwnd, total, min_rtt, self.weight)


__all__ = ["TraSh", "trash_delta"]
