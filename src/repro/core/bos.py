"""BOS — Buffer Occupancy Suppression (paper §2.1, Algorithm 1).

BOS is the per-subflow window law of XMP:

* **Slow start** — grow by one segment per clean ACK; the first ACK
  carrying ECN echo ends slow start.
* **Congestion avoidance** — grow by ``delta`` once per *round* (one
  smoothed RTT, delimited by ``beg_seq``), accumulated through a
  fractional ``adder`` so non-integer deltas average out correctly.
* **Decrease** — on ECN echo, cut ``cwnd`` by a factor ``1/beta`` at most
  once per round (the Fig. 2 NORMAL/REDUCED machine), never below 2
  segments, and pin ``ssthresh = cwnd - 1`` so slow start is not
  re-entered.

Standalone BOS uses ``delta = 1`` and is exactly the "halving cwnd with a
constant factor" scheme of Fig. 1 when ``beta = 2``.  Under XMP,
:class:`~repro.core.trash.TraSh` supplies ``delta`` per round (Eq. 9),
which is what couples the subflows.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.transport.cc import MIN_CWND, NORMAL, CongestionControl

#: The paper's recommended reduction factor for 1 Gbps DCN links (§2.1).
DEFAULT_BETA = 4

DeltaProvider = Callable[["BosCC", float], float]


class BosCC(CongestionControl):
    """The BOS window law, optionally coupled through a delta provider."""

    ecn_capable = True
    echo_mode_name = "xmp"

    def __init__(
        self,
        beta: float = DEFAULT_BETA,
        delta_provider: Optional[DeltaProvider] = None,
    ) -> None:
        super().__init__()
        if beta < 2:
            raise ValueError(
                f"beta must be >= 2 (Eq. 1 requires it), got {beta}"
            )
        self.beta = float(beta)
        self.delta_provider = delta_provider
        #: Fractional-increase accumulator (``adder`` in Algorithm 1).
        self.adder = 0.0
        #: Growth parameter applied last round (1.0 until coupled).
        self.delta = 1.0
        self.reductions = 0

    # ------------------------------------------------------------------

    def on_ack(
        self,
        newly_acked: int,
        ece_count: int,
        rtt_sample: Optional[float],
        now: float,
        round_ended: bool,
    ) -> None:
        sender = self.sender
        assert sender is not None

        # Leave REDUCED as soon as snd_una passes cwr_seq (the paper's
        # condition is on snd_una, which the sender updated before calling
        # us) — an ECE on this very ACK then belongs to the new round.
        self.update_cwr_state(sender.snd_una)

        # "At receiving ECE or CWR": reduce once per round.
        if ece_count > 0 and self.state == NORMAL:
            self._reduce()

        # Per-round operations: recompute delta and apply the CA increase.
        if round_ended:
            if self.delta_provider is not None:
                self.delta = self.delta_provider(self, now)
            grown = 0
            if self.state == NORMAL and sender.cwnd > sender.ssthresh:
                self.adder += self.delta
                whole = math.floor(self.adder)
                if whole > 0:
                    sender.cwnd += whole
                    self.adder -= whole
                    grown = whole
            if self.observer is not None:
                self.observer.on_round(self, self.delta, grown)

        # Per-ACK operations: slow start.
        if (
            newly_acked > 0
            and self.state == NORMAL
            and sender.cwnd <= sender.ssthresh
            and not sender.in_recovery
        ):
            sender.cwnd += 1

    def _reduce(self) -> None:
        """Algorithm 1's ECE/CWR handler body."""
        sender = self.sender
        assert sender is not None
        if not self.enter_reduced():
            return
        self.reductions += 1
        cwnd_before = sender.cwnd
        if sender.cwnd > sender.ssthresh:
            decrement = max(sender.cwnd / self.beta, 1.0)
            sender.cwnd = max(sender.cwnd - decrement, MIN_CWND)
        # "Avoid re-entering slow start" — also how slow start *ends* on the
        # very first echo (cwnd <= ssthresh skips the cut but lands here).
        sender.ssthresh = sender.cwnd - 1.0
        if self.observer is not None:
            self.observer.on_reduce(self, cwnd_before, sender.cwnd)

    def on_timeout(self, now: float) -> None:
        super().on_timeout(now)
        self.adder = 0.0


__all__ = ["BosCC", "DEFAULT_BETA", "DeltaProvider"]
