"""Reproducible randomness.

Experiments need independent random streams per concern (flow sizes,
host choices, start-time jitter, ECMP hashing) so that changing how one
component consumes randomness does not perturb the others.  A
:class:`RandomStreams` derives named child :class:`random.Random` instances
from a single seed; the same ``(seed, name)`` pair always yields the same
stream.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RandomStreams:
    """A family of named, independently seeded random streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Derivation hashes the name with CRC32 and mixes it with the base
        seed, so streams are stable across runs and across unrelated stream
        creations.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        derived_seed = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF
        stream = random.Random(derived_seed)
        self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child family, e.g. one per repetition of an experiment."""
        derived_seed = (self.seed * 0x85EBCA77 + zlib.crc32(name.encode())) & 0xFFFFFFFF
        return RandomStreams(derived_seed)


def pareto_bounded(
    rng: random.Random, shape: float, mean: float, upper: float
) -> float:
    """Sample a bounded Pareto variate parameterised by its (unbounded) mean.

    The paper's Random pattern draws flow sizes from a Pareto distribution
    with shape 1.5, mean 192 MB, upper bound 768 MB.  For shape ``a > 1`` the
    unbounded Pareto with scale ``x_m`` has mean ``a*x_m/(a-1)``; we invert
    that for the scale and clamp at ``upper``.
    """
    if shape <= 1.0:
        raise ValueError(f"Pareto shape must exceed 1 for a finite mean, got {shape}")
    if mean <= 0 or upper <= 0:
        raise ValueError("mean and upper bound must be positive")
    scale = mean * (shape - 1.0) / shape
    value = scale / (1.0 - rng.random()) ** (1.0 / shape)
    return min(value, float(upper))


__all__ = ["RandomStreams", "pareto_bounded"]
