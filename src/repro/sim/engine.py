"""The discrete-event simulator core.

A :class:`Simulator` owns a three-tier calendar/ladder event structure
and a monotonically advancing clock.  Everything in the network model —
link serialization, propagation, TCP timers, application arrivals — is
expressed as events on a single simulator instance, so a whole experiment
is one deterministic event loop.

Time is a ``float`` in **seconds**.  All delays produced by the network
model are sums and quotients of exact inputs, and the deterministic
``(time, priority, seq)`` ordering means float rounding can never reorder
two events that were scheduled in a defined order at the same instant.

Event structure
---------------

Events live in exactly one of three tiers, partitioned by two moving
time boundaries ``run_end < horizon`` (both absolute simulation times):

* the **run** — a list sorted by ``(time, priority, seq)`` holding every
  pending event with ``time < run_end``, consumed in order by an index
  (no pops, no per-event heap maintenance).  Events scheduled *into* the
  current run window (the common case: zero- and short-delay chains) are
  insertion-sorted into the unconsumed suffix with :func:`bisect.insort`;
* the **near bucket** — an unsorted list for ``run_end <= time <
  horizon``.  Scheduling here is a plain ``list.append``.  When the run
  drains, the near bucket is sorted once (Timsort, in C) and promoted to
  be the new run;
* the **far tier** — everything at ``time >= horizon`` (RTO timers,
  application arrivals...).  Not a heap: a lazily sorted list.  Inserts
  are plain appends onto a possibly-unsorted tail; the list is sorted
  (Timsort exploits the already-sorted prefix) only when a promotion
  actually needs to spill, and spilled records are consumed through an
  index (``_far_i``) so a spill is one ``bisect`` plus one slice instead
  of per-record ``heappop`` calls.  ``_far_tail_min`` tracks the minimum
  time in the unsorted tail so the no-spill check stays O(1).

The bucket width adapts to the observed event density (halving when runs
come out oversized, doubling when they come out undersized), and a hard
``RUN_MAX`` cut keeps any single promotion bounded: an oversized sorted
run is split at a *time boundary*, never between two events at the same
instant, so the ``(time, priority, seq)`` total order — including
same-instant priority ties resolved across tiers — is exactly the order
a single binary heap would produce.  ``tests/test_sim_calendar.py``
pins this equivalence property against a reference heap.

Event records are packed 6-tuples ``(time, priority, seq, event, callback,
args)`` so ordering comparisons and sorting stay in C.  The ``event``
field is ``None`` for records created by :meth:`Simulator.post`, the
allocation-free fast path for the per-packet events (link serialization,
propagation delivery) that are never cancelled; :meth:`Simulator.schedule`
additionally allocates an :class:`~repro.sim.events.Event` handle for
callers that may cancel.  Cancellation stays lazy (flag + skip-on-pop)
with the same compaction thresholds the seed engine used.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.sim.events import Event

#: One packed event record; ``event`` is None for post()-ed records.
EventRecord = Tuple[float, int, int, Optional[Event], Callable[..., None], tuple]

_INF = math.inf


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (e.g. scheduling in the past)."""


class Simulator:
    """A single-threaded discrete-event scheduler.

    Typical usage::

        sim = Simulator()
        sim.schedule(0.5, callback, arg1, arg2)
        sim.run(until=10.0)

    The simulator stops when the pending set drains, when ``until`` is
    reached, or when :meth:`stop` is called from inside a callback.
    """

    #: Compaction fires only past this many pending cancellations …
    COMPACT_MIN_CANCELLED = 1024
    #: … and only when cancelled events exceed this fraction of the heap.
    COMPACT_FRACTION = 0.5

    #: Promotion sizing: halve the bucket width when a promoted run
    #: exceeds RUN_HI records, double it below RUN_LO.  Runs are kept
    #: deliberately short: scheduling *into* the active run is an
    #: insertion-sort (C bisect + list-insert memmove), and the per-packet
    #: layers post short-delay events constantly, so small runs trade a
    #: few extra promotions (one cheap Timsort each) for much cheaper
    #: in-run inserts.  Tuned on the BENCH_engine.json cells.
    RUN_LO = 8
    RUN_HI = 128
    #: Hard cap: an oversized run is cut back to ~RUN_MAX at a time
    #: boundary and the tail returned to the near bucket.
    RUN_MAX = 512
    #: Bucket width bounds (seconds of simulated time).
    MIN_WIDTH = 1e-9
    MAX_WIDTH = 64.0
    #: Initial bucket width: a fraction of the paper testbed's ~100 us
    #: RTT, so the first promotions start near the adapted regime.
    INITIAL_WIDTH = 16e-6

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        # --- the three tiers ------------------------------------------
        #: Sorted records with time < _run_end, consumed from _run_i.
        self._run: List[EventRecord] = []
        self._run_i = 0
        self._run_end = 0.0
        #: Unsorted records with _run_end <= time < _horizon.
        self._near: List[EventRecord] = []
        #: Records with time >= _horizon: a sorted prefix (consumed from
        #: _far_i, sorted through _far_sorted) plus an appended unsorted
        #: tail whose minimum time is _far_tail_min (inf when clean).
        self._far: List[EventRecord] = []
        self._far_i = 0
        self._far_sorted = 0
        self._far_tail_min = _INF
        self._horizon = 0.0
        self._width = self.INITIAL_WIDTH
        # --- bookkeeping ----------------------------------------------
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._cancelled_pending = 0
        self._compactions = 0
        self._promotions = 0
        self._far_spills = 0
        self._max_run = 0
        #: Optional validation observer (see :mod:`repro.validate`): when
        #: set *before* :meth:`run`, ``observer.on_event(time)`` fires for
        #: every event.  ``None`` (the default) costs one aliased branch.
        self.observer: Optional[Any] = None
        #: Optional engine profiler (see :mod:`repro.obs`): when set,
        #: every fired callback is timed with the profiler's own clock
        #: and bucketed by component, and scheduler traffic is counted.
        #: ``None`` (the default) costs one aliased branch per event and
        #: one per :meth:`schedule` — the <3% zero-cost contract.
        self.profiler: Optional[Any] = None
        #: Optional same-instant race sanitizer (see :mod:`repro.lint.race`):
        #: when set, ``race.on_event_fired(time, priority, callback)`` /
        #: ``race.on_event_settled()`` bracket every fired callback so the
        #: monitor can diff receiver state within equal-``(time, priority)``
        #: batches.  Purely observational; ``None`` (the default) keeps the
        #: leanest loop in play — the same zero-cost contract as above.
        self.race: Optional[Any] = None
        #: Optional allocation sanitizer (see :mod:`repro.lint.perf`):
        #: when set, ``alloc.on_event_fired(time, priority, callback)`` /
        #: ``alloc.on_event_settled()`` bracket every fired callback so
        #: the monitor can attribute tracemalloc peak deltas to
        #: registered hot functions.  Purely observational; ``None``
        #: (the default) keeps the leanest loop in play — the fourth
        #: seam under the same zero-cost contract.
        self.alloc: Optional[Any] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of pending records, including cancelled ones."""
        return (
            (len(self._run) - self._run_i)
            + len(self._near)
            + (len(self._far) - self._far_i)
        )

    @property
    def cancelled_pending(self) -> int:
        """Number of cancelled events still occupying scheduler slots."""
        return self._cancelled_pending

    @property
    def compactions(self) -> int:
        """Number of structure compactions performed (see :meth:`_compact`)."""
        return self._compactions

    @property
    def promotions(self) -> int:
        """Number of near-bucket promotions (sorted-run rebuilds) so far."""
        return self._promotions

    @property
    def far_spills(self) -> int:
        """Records pulled from the far heap into near buckets so far."""
        return self._far_spills

    @property
    def max_run(self) -> int:
        """Largest promoted run size seen (scheduler health metric)."""
        return self._max_run

    def iter_pending(self) -> Iterator[EventRecord]:
        """Yield every pending record (unspecified order; diagnostics/tests)."""
        yield from self._run[self._run_i:]
        yield from self._near
        yield from self._far[self._far_i:]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``priority`` breaks ties among events at the same instant (lower
        fires first); the insertion sequence breaks remaining ties, so
        same-time same-priority events fire in FIFO order.

        Returns the :class:`Event`, which the caller may :meth:`~Event.cancel`.
        Hot paths that never cancel should prefer :meth:`post`, which
        skips the handle allocation entirely.
        """
        if not 0.0 <= delay < _INF:
            # One comparison rejects negatives, inf and NaN alike: NaN
            # fails every comparison, and letting it into the ordered
            # tiers would silently corrupt the (time, priority, seq)
            # total order instead of failing loudly here.
            raise SimulationError(  # simperf: allow-alloc(error path)
                f"delay must be finite and >= 0, got {delay!r}"  # simperf: allow-alloc(error path)
            )
        time = self._now + delay
        self._seq = seq = self._seq + 1
        event = Event(time, priority, seq, callback, args)  # simperf: allow-alloc(cancellation handle is the documented cost of schedule; post() is the alloc-free path)
        event.sim = self
        record = (time, priority, seq, event, callback, args)  # simperf: allow-alloc(calendar-queue record tuple; inherent to scheduling)
        if time < self._run_end:
            insort(self._run, record, self._run_i)
        elif time < self._horizon:
            self._near.append(record)
        else:
            self._far.append(record)
            if time < self._far_tail_min:
                self._far_tail_min = time
        if self.profiler is not None:
            self.profiler.on_push(self.pending_events)
        return event

    def post(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(*args)`` with no cancellation handle.

        The allocation-free fast path for fire-and-forget events — link
        serialization completions, propagation deliveries, ACK dispatch —
        which dominate event traffic and are never cancelled.  Ordering
        semantics are identical to :meth:`schedule` (``post`` consumes a
        sequence number from the same counter), only the :class:`Event`
        allocation and its back-reference bookkeeping are skipped.
        """
        if not 0.0 <= delay < _INF:
            raise SimulationError(  # simperf: allow-alloc(error path)
                f"delay must be finite and >= 0, got {delay!r}"  # simperf: allow-alloc(error path)
            )
        time = self._now + delay
        self._seq = seq = self._seq + 1
        record = (time, priority, seq, None, callback, args)  # simperf: allow-alloc(calendar-queue record tuple; inherent to scheduling)
        if time < self._run_end:
            insort(self._run, record, self._run_i)
        elif time < self._horizon:
            self._near.append(record)
        else:
            self._far.append(record)
            if time < self._far_tail_min:
                self._far_tail_min = time
        if self.profiler is not None:
            self.profiler.on_push(self.pending_events)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        return self.schedule(time - self._now, callback, *args, priority=priority)

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` while the event is scheduler-resident.

        Lazy deletion leaves cancelled events in place until their
        scheduled time; when they dominate (long runs cancel an RTO timer
        per ACK burst), sorts and spills churn through mostly-dead
        records.  Rebuilding once the dead fraction passes
        ``COMPACT_FRACTION`` keeps the amortized cost constant.
        """
        self._cancelled_pending += 1
        if (
            self._cancelled_pending > self.COMPACT_MIN_CANCELLED
            and self._cancelled_pending * 2 > self.pending_events
        ):
            self._compact()

    @staticmethod
    def _alive(record: EventRecord) -> bool:
        event = record[3]
        return event is None or not event.cancelled

    def _compact(self) -> None:
        """Drop cancelled records from all three tiers, in place.

        In place (slice assignment) because :meth:`run` may hold a local
        alias of the run list; safe mid-run because the loop re-reads the
        consumption index after every callback.
        """
        alive = self._alive
        self._run[:] = [r for r in self._run[self._run_i:] if alive(r)]
        self._run_i = 0
        self._near[:] = [r for r in self._near if alive(r)]
        live_far = [r for r in self._far[self._far_i:] if alive(r)]
        live_far.sort()
        self._far[:] = live_far
        self._far_i = 0
        self._far_sorted = len(live_far)
        self._far_tail_min = _INF
        self._cancelled_pending = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Tier promotion
    # ------------------------------------------------------------------

    def _spill_far(self, horizon: float) -> None:
        """Move far records with ``time < horizon`` into the near bucket.

        Normalizes the far tier first when the unsorted tail could hold a
        spill candidate: consumed prefix dropped, one Timsort (cheap —
        the prefix is already sorted), then a single ``bisect`` bounds
        the spill slice.  Records at exactly ``horizon`` stay far: the
        probe ``(horizon,)`` compares below every real record at that
        time, so ``bisect_left`` lands on the tier boundary.
        """
        far = self._far
        i = self._far_i
        if self._far_tail_min < horizon:
            if i:
                del far[:i]
                i = self._far_i = 0
            far.sort()
            self._far_sorted = len(far)
            self._far_tail_min = _INF
        sorted_end = self._far_sorted
        if i >= sorted_end or far[i][0] >= horizon:
            return
        idx = bisect_left(far, (horizon,), i, sorted_end)
        self._near.extend(far[i:idx])
        self._far_spills += idx - i
        if idx >= len(far):
            del far[:]
            self._far_i = 0
            self._far_sorted = 0
        elif idx >= 8192:
            # Trim the consumed prefix occasionally so memory stays
            # bounded; amortized O(1) per spilled record.
            del far[:idx]
            self._far_i = 0
            self._far_sorted = sorted_end - idx
        else:
            self._far_i = idx

    def _promote(self) -> bool:
        """Build the next sorted run; return False when nothing is pending.

        Never runs user code: the loop calls it between events, so the
        tier invariants can be rearranged atomically.
        """
        near = self._near
        if near:
            near.sort()
        else:
            far = self._far
            i = self._far_i
            if i >= len(far):
                return False
            # Jump the window to the earliest far event: sparse phases
            # (idle network, lone RTO pending) skip ahead in one step
            # instead of sliding the window bucket by bucket.
            start = far[i][0] if i < self._far_sorted else _INF
            if self._far_tail_min < start:
                start = self._far_tail_min
            horizon = start + self._width
            self._horizon = horizon
            self._spill_far(horizon)
            near = self._near  # the spilled slice — already sorted
        size = len(near)
        run = near
        tail: List[EventRecord] = []
        run_end = self._horizon
        if size > self.RUN_MAX:
            # Cut the oversized run at a time boundary: records sharing
            # one instant must stay in one tier, or a later-scheduled
            # lower-priority record could overtake them.
            cut = self.RUN_MAX
            cut_time = run[cut][0]
            while cut > 0 and run[cut - 1][0] == cut_time:
                cut -= 1
            if cut > 0:
                tail = run[cut:]
                del run[cut:]
                run_end = cut_time
        self._run = run
        self._run_i = 0
        self._run_end = run_end
        self._near = tail
        self._promotions += 1
        if size > self._max_run:
            self._max_run = size
        # Adapt the bucket width to the observed density.
        if size > self.RUN_HI:
            if self._width > self.MIN_WIDTH:
                self._width *= 0.5
        elif size < self.RUN_LO and self._width < self.MAX_WIDTH:
            self._width *= 2.0
        if run_end == self._horizon:
            # Consumed the whole near window: slide it one bucket and
            # spill the far records that just became near.
            horizon = run_end + self._width
            self._horizon = horizon
            far = self._far
            i = self._far_i
            if self._far_tail_min < horizon or (
                i < self._far_sorted and far[i][0] < horizon
            ):
                self._spill_far(horizon)
        profiler = self.profiler
        if profiler is not None:
            profiler.on_promote(size)
        return True

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Args:
            until: stop once the clock would pass this time.  Events at
                exactly ``until`` still fire.  The clock is advanced to
                ``until`` on a timed stop so metric windows close cleanly.
            max_events: safety valve; stop after this many fired events.

        Returns:
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")  # simperf: allow-alloc(error path, checked once per run)
        self._running = True
        self._stopped = False
        stop_time = _INF if until is None else until
        remaining = _INF if max_events is None else max_events
        observer = self.observer
        profiler = self.profiler
        race = self.race
        alloc = self.alloc
        # The profiler supplies its own host clock: repro.sim never reads
        # wall time itself (simlint SIM002), it only times on request.
        clock: Optional[Callable[[], float]] = (
            profiler.clock if profiler is not None else None
        )
        # Both loops re-read _run/_run_i every iteration (a cancel inside
        # a callback can trigger a compaction that rebuilds the run and
        # rewinds the index) and fetch the next record with a narrow
        # try/except instead of a length check: the IndexError only ever
        # means "run consumed", because nothing else runs inside the try.
        exhausted = False
        try:
            if (
                observer is None and clock is None and max_events is None
                and race is None and alloc is None
            ):
                # Leanest loop: the default configuration for experiments
                # (no hooks, no event budget).  Identical semantics minus
                # the hook calls and the ``remaining`` countdown; keeping
                # the hot loop branch-free is worth the duplication.
                while True:
                    i = self._run_i
                    run = self._run
                    try:
                        record = run[i]
                    except IndexError:
                        if self._promote():  # simperf: allow-alloc(amortized: one rebuild per calendar batch)
                            continue
                        exhausted = True
                        break
                    time = record[0]
                    if time > stop_time:
                        if stop_time > self._now:
                            self._now = stop_time
                        break
                    event = record[3]
                    if event is not None:
                        if event.cancelled:
                            self._run_i = i + 1
                            event.sim = None
                            self._cancelled_pending -= 1
                            continue
                        event.sim = None
                    self._run_i = i + 1
                    self._now = time
                    args = record[5]
                    if args:
                        record[4](*args)  # simlint: disable=SIM023 - unpacking an existing tuple is the fast variadic call shape
                    else:
                        record[4]()
                    self._events_processed += 1
                    if self._stopped:
                        break
            elif (
                observer is None and clock is None and race is None
                and alloc is None
            ):
                # Lean loop with an event budget (max_events).
                while True:
                    i = self._run_i
                    run = self._run
                    try:
                        record = run[i]
                    except IndexError:
                        if self._promote():  # simperf: allow-alloc(amortized: one rebuild per calendar batch)
                            continue
                        exhausted = True
                        break
                    time = record[0]
                    if time > stop_time:
                        if stop_time > self._now:
                            self._now = stop_time
                        break
                    event = record[3]
                    if event is not None:
                        if event.cancelled:
                            self._run_i = i + 1
                            event.sim = None
                            self._cancelled_pending -= 1
                            continue
                        event.sim = None
                    self._run_i = i + 1
                    self._now = time
                    args = record[5]
                    if args:
                        record[4](*args)  # simlint: disable=SIM023 - unpacking an existing tuple is the fast variadic call shape
                    else:
                        record[4]()
                    self._events_processed += 1
                    if self._stopped:
                        break
                    remaining -= 1
                    if remaining <= 0:
                        break
            else:
                while True:
                    i = self._run_i
                    run = self._run
                    try:
                        record = run[i]
                    except IndexError:
                        if self._promote():  # simperf: allow-alloc(amortized: one rebuild per calendar batch)
                            continue
                        exhausted = True
                        break
                    time = record[0]
                    if time > stop_time:
                        if stop_time > self._now:
                            self._now = stop_time
                        break
                    event = record[3]
                    if event is not None:
                        if event.cancelled:
                            self._run_i = i + 1
                            event.sim = None
                            self._cancelled_pending -= 1
                            if profiler is not None:
                                profiler.on_discard()
                            continue
                        event.sim = None
                    self._run_i = i + 1
                    self._now = time
                    if observer is not None:
                        observer.on_event(time)
                    if race is not None:
                        race.on_event_fired(time, record[1], record[4])
                    # alloc brackets the callback innermost so the
                    # tracemalloc window excludes the other hooks.
                    if alloc is not None:
                        alloc.on_event_fired(time, record[1], record[4])
                    if clock is None:
                        record[4](*record[5])  # simlint: disable=SIM023 - unpacking an existing tuple is the fast variadic call shape
                    else:
                        started = clock()
                        record[4](*record[5])  # simlint: disable=SIM023 - unpacking an existing tuple is the fast variadic call shape
                        assert profiler is not None
                        profiler.on_fire(record[4], clock() - started)
                    if alloc is not None:
                        alloc.on_event_settled()
                    if race is not None:
                        race.on_event_settled()
                    self._events_processed += 1
                    if self._stopped:
                        break
                    remaining -= 1
                    if remaining <= 0:
                        break
        finally:
            self._running = False
        if exhausted and until is not None and stop_time > self._now:
            self._now = stop_time
        return self._now

    def stop(self) -> None:
        """Request the loop to stop after the current callback returns."""
        self._stopped = True

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero.

        Only meaningful between independent runs that reuse the object;
        experiments normally build a fresh :class:`Simulator` instead.
        """
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        for record in self.iter_pending():
            if record[3] is not None:
                record[3].sim = None
        self._run = []
        self._run_i = 0
        self._run_end = 0.0
        self._near = []
        self._far = []
        self._far_i = 0
        self._far_sorted = 0
        self._far_tail_min = _INF
        self._horizon = 0.0
        self._width = self.INITIAL_WIDTH
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._cancelled_pending = 0
        self._compactions = 0
        self._promotions = 0
        self._far_spills = 0
        self._max_run = 0
        self._stopped = False


__all__ = ["Simulator", "SimulationError", "EventRecord"]
