"""The discrete-event simulator core.

A :class:`Simulator` owns a binary heap of :class:`~repro.sim.events.Event`
objects and a monotonically advancing clock.  Everything in the network
model — link serialization, propagation, TCP timers, application arrivals —
is expressed as events on a single simulator instance, so a whole experiment
is one deterministic event loop.

Time is a ``float`` in **seconds**.  All delays produced by the network
model are sums and quotients of exact inputs, and the deterministic
``(time, priority, seq)`` ordering means float rounding can never reorder
two events that were scheduled in a defined order at the same instant.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.events import Event


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (e.g. scheduling in the past)."""


class Simulator:
    """A single-threaded discrete-event scheduler.

    Typical usage::

        sim = Simulator()
        sim.schedule(0.5, callback, arg1, arg2)
        sim.run(until=10.0)

    The simulator stops when the heap drains, when ``until`` is reached, or
    when :meth:`stop` is called from inside a callback.
    """

    #: Compaction fires only past this many pending cancellations …
    COMPACT_MIN_CANCELLED = 1024
    #: … and only when cancelled events exceed this fraction of the heap.
    COMPACT_FRACTION = 0.5

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._cancelled_pending = 0
        self._compactions = 0
        #: Optional validation observer (see :mod:`repro.validate`): when
        #: set *before* :meth:`run`, ``observer.on_event(time)`` fires for
        #: every event.  ``None`` (the default) costs one aliased branch.
        self.observer: Optional[Any] = None
        #: Optional engine profiler (see :mod:`repro.obs`): when set,
        #: every fired callback is timed with the profiler's own clock
        #: and bucketed by component, and heap pushes/pops are counted.
        #: ``None`` (the default) costs one aliased branch per event and
        #: one per :meth:`schedule` — the <3% zero-cost contract.
        self.profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still on the heap, including cancelled ones."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Number of cancelled events still occupying heap slots."""
        return self._cancelled_pending

    @property
    def compactions(self) -> int:
        """Number of heap compactions performed (see :meth:`_compact`)."""
        return self._compactions

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``priority`` breaks ties among events at the same instant (lower
        fires first); the insertion sequence breaks remaining ties, so
        same-time same-priority events fire in FIFO order.

        Returns the :class:`Event`, which the caller may :meth:`~Event.cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        self._seq += 1
        event = Event(time, priority, self._seq, callback, args)
        event.sim = self
        # The heap stores plain tuples so ordering comparisons stay in C;
        # the Event rides along for lazy cancellation.
        heapq.heappush(self._heap, (time, priority, self._seq, event))
        profiler = self.profiler
        if profiler is not None:
            profiler.on_push(len(self._heap))
        return event

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` while the event is heap-resident.

        Lazy deletion leaves cancelled events on the heap until their
        scheduled time; when they dominate (long runs cancel an RTO timer
        per ACK burst), every ``heappush`` pays ``log`` of a mostly-dead
        heap.  Rebuilding once the dead fraction passes
        ``COMPACT_FRACTION`` keeps the amortized cost constant.
        """
        self._cancelled_pending += 1
        if (
            self._cancelled_pending > self.COMPACT_MIN_CANCELLED
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In place because :meth:`run` holds a local alias of the heap list;
        safe mid-run because the loop re-reads ``heap[0]`` every iteration.
        """
        live = [entry for entry in self._heap if not entry[3].cancelled]
        self._heap[:] = live
        heapq.heapify(self._heap)
        self._cancelled_pending = 0
        self._compactions += 1

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        return self.schedule(time - self._now, callback, *args, priority=priority)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Args:
            until: stop once the clock would pass this time.  Events at
                exactly ``until`` still fire.  The clock is advanced to
                ``until`` on a timed stop so metric windows close cleanly.
            max_events: safety valve; stop after this many fired events.

        Returns:
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        heap = self._heap
        heappop = heapq.heappop
        observer = self.observer
        profiler = self.profiler
        # The profiler supplies its own host clock: repro.sim never reads
        # wall time itself (simlint SIM002), it only times on request.
        clock: Optional[Callable[[], float]] = (
            profiler.clock if profiler is not None else None
        )
        try:
            while heap:
                time, _priority, _seq, event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    event.sim = None
                    self._cancelled_pending -= 1
                    if profiler is not None:
                        profiler.on_discard()
                    continue
                if until is not None and time > until:
                    self._now = until
                    break
                heappop(heap)
                event.sim = None
                self._now = time
                if observer is not None:
                    observer.on_event(time)
                if clock is None:
                    event.callback(*event.args)
                else:
                    started = clock()
                    event.callback(*event.args)
                    assert profiler is not None
                    profiler.on_fire(event.callback, clock() - started)
                self._events_processed += 1
                fired += 1
                if self._stopped:
                    break
                if max_events is not None and fired >= max_events:
                    break
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request the loop to stop after the current callback returns."""
        self._stopped = True

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero.

        Only meaningful between independent runs that reuse the object;
        experiments normally build a fresh :class:`Simulator` instead.
        """
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        for entry in self._heap:
            entry[3].sim = None
        self._heap.clear()
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._cancelled_pending = 0
        self._compactions = 0
        self._stopped = False


__all__ = ["Simulator", "SimulationError"]
