"""The named event-priority registry.

The engine's total event order is ``(time, priority, seq)``; priority is
the *only* lever that defines ordering between events sharing an instant
(``seq`` merely preserves insertion order, which no call site should
rely on — PR 4's sampler-tick bug was exactly an accidental dependence
on it).  Every ``schedule()``/``post()`` call site must therefore name
the tier it fires in, even when that tier is the default ``MODEL``:
naming is what makes the intent checkable.

simrace (:mod:`repro.lint.race`) keys off this registry: SIM018 flags
periodic callbacks scheduled at an unnamed (default or bare-literal)
priority, and resolves ``priority=<name>`` arguments against
:data:`TIERS` to decide which call sites share an instant's tier.

Tiers (lower fires first within an instant):

``MODEL`` (0)
    transport, queue, link and application events — the simulated system
    itself.  Numerically identical to the engine default, so annotating
    a site with ``priority=MODEL`` can never change an event order.
``SAMPLE`` (1_000_000)
    measurement ticks (:mod:`repro.metrics.collector`).  Samplers must
    observe the *settled* end-of-instant state, never the middle of an
    ACK burst sharing their timestamp.  The wide gap leaves room for
    future between-model-and-sampler layers.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Simulated-system events (the engine default, made nameable).
MODEL = 0

#: Measurement ticks; fires after every MODEL event at the same instant.
SAMPLE = 1_000_000

#: Name -> value, the registry simrace resolves ``priority=`` names against.
TIERS: Dict[str, int] = {
    "MODEL": MODEL,
    "SAMPLE": SAMPLE,
}

#: Dotted module name, for static resolution of imported tier names.
PRIORITIES_MODULE = "repro.sim.priorities"


def tier_name(value: int) -> Optional[str]:
    """The tier named ``value``, or ``None`` if no tier has that value."""
    for name, tier_value in TIERS.items():
        if tier_value == value:
            return name
    return None


__all__ = ["MODEL", "SAMPLE", "TIERS", "PRIORITIES_MODULE", "tier_name"]
