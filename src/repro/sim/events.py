"""Event objects for the discrete-event scheduler.

Events are small, slotted objects ordered by ``(time, priority, seq)``.
The ``seq`` counter guarantees deterministic FIFO ordering among events
scheduled for the same instant, which keeps whole simulations reproducible
bit-for-bit for a given seed.

Cancellation uses lazy deletion: :meth:`Event.cancel` flips a flag and the
scheduler skips cancelled events when it pops them.  This is much cheaper
than re-heapifying and is the standard approach for timer-heavy network
simulations (every TCP segment arms or re-arms an RTO timer).  The
scheduler counts pending cancellations and compacts its heap when they
dominate (see :meth:`repro.sim.engine.Simulator._compact`), so long runs
with many cancelled retransmit timers don't degrade ``heappush`` cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional, Tuple

from repro.sim.priorities import MODEL

if TYPE_CHECKING:  # pragma: no cover - import cycle breaker, types only
    from repro.sim.engine import Simulator


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.sim.engine.Simulator.schedule`;
    user code normally only keeps a reference in order to :meth:`cancel`.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Back-reference set by the scheduler while the event is on its
        #: heap, so cancellation can be counted for heap compaction; the
        #: scheduler clears it when the event is popped.
        self.sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it.

        Cancelling an already-cancelled or already-fired event is a no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.9f}, prio={self.priority}, {name}, {state})"


class Timer:
    """A restartable one-shot timer built on top of :class:`Event`.

    TCP retransmission timers are re-armed on every ACK; naively that would
    push one heap entry per ACK.  ``Timer`` instead tracks a *deadline*:
    when a restart only moves the deadline later (the overwhelmingly common
    case for RTO timers), the already-scheduled event is kept and simply
    re-schedules itself on wake-up if the deadline has moved.  This keeps
    heap traffic at one event per expiry period instead of one per ACK.
    """

    __slots__ = ("_sim", "_callback", "_event", "_deadline")

    def __init__(self, sim: "Simulator", callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None
        self._deadline: Optional[float] = None

    @property
    def armed(self) -> bool:
        """Whether the timer is currently pending."""
        return self._deadline is not None

    @property
    def expiry(self) -> Optional[float]:
        """Absolute expiry time, or ``None`` when not armed."""
        return self._deadline

    def start(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from now, replacing any pending arm."""
        deadline = self._sim.now + delay
        self._deadline = deadline
        event = self._event
        if event is not None and not event.cancelled:
            if event.time <= deadline:
                return  # The pending event will re-arm itself on wake-up.
            event.cancel()
        self._event = self._sim.schedule(delay, self._fire, priority=MODEL)

    def restart(self, delay: float) -> None:
        """Alias of :meth:`start`; reads better at call sites that re-arm."""
        self.start(delay)

    def cancel(self) -> None:
        """Disarm the timer if pending (the heap entry is lazily skipped)."""
        self._deadline = None

    def _fire(self) -> None:
        self._event = None
        deadline = self._deadline
        if deadline is None:
            return  # Cancelled since the event was queued.
        now = self._sim.now
        if deadline > now:
            # Deadline moved later while we were queued; sleep again.
            self._event = self._sim.schedule(
                deadline - now, self._fire, priority=MODEL
            )
            return
        self._deadline = None
        self._callback()


__all__ = ["Event", "Timer"]
