"""Unit helpers.

The simulator's base units are **seconds**, **bits per second** and
**bytes**.  The paper mixes Gbps links, microsecond delays and packet-count
queues; these helpers keep experiment configs readable and conversion bugs
out of the model code.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

def seconds(value: float) -> float:
    """Identity; marks a literal as seconds at call sites."""
    return float(value)


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


def microseconds(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def nanoseconds(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * 1e-9


# ---------------------------------------------------------------------------
# Rates
# ---------------------------------------------------------------------------

def bits_per_second(value: float) -> float:
    """Identity; marks a literal as bits/second at call sites."""
    return float(value)


def kilobits_per_second(value: float) -> float:
    """Convert kbit/s to bit/s."""
    return value * 1e3


def megabits_per_second(value: float) -> float:
    """Convert Mbit/s to bit/s."""
    return value * 1e6


def gigabits_per_second(value: float) -> float:
    """Convert Gbit/s to bit/s."""
    return value * 1e9


# ---------------------------------------------------------------------------
# Sizes
# ---------------------------------------------------------------------------

def bytes_(value: float) -> int:
    """Identity (rounded); marks a literal as bytes at call sites."""
    return int(value)


def kilobytes(value: float) -> int:
    """Convert KB (10^3) to bytes."""
    return int(value * 1e3)


def kibibytes(value: float) -> int:
    """Convert KiB (2^10) to bytes."""
    return int(value * 1024)


def megabytes(value: float) -> int:
    """Convert MB (10^6) to bytes."""
    return int(value * 1e6)


def mebibytes(value: float) -> int:
    """Convert MiB (2^20) to bytes."""
    return int(value * 1024 * 1024)


def gigabytes(value: float) -> int:
    """Convert GB (10^9) to bytes."""
    return int(value * 1e9)


# ---------------------------------------------------------------------------
# Derived quantities
# ---------------------------------------------------------------------------

def transmission_delay(size_bytes: int, rate_bps: float) -> float:
    """Serialization time of ``size_bytes`` on a ``rate_bps`` link, seconds."""
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    return size_bytes * 8.0 / rate_bps


def bandwidth_delay_product_packets(
    rate_bps: float, rtt_s: float, packet_bytes: int = 1500
) -> float:
    """BDP expressed in packets, as used throughout the paper (e.g. Eq. 1).

    The paper computes e.g. ``1 Gbps x 225 us / (8 x 1500) ~= 19 packets``.
    """
    if packet_bytes <= 0:
        raise ValueError(f"packet size must be positive, got {packet_bytes}")
    return rate_bps * rtt_s / (8.0 * packet_bytes)


__all__ = [
    "seconds",
    "milliseconds",
    "microseconds",
    "nanoseconds",
    "bits_per_second",
    "kilobits_per_second",
    "megabits_per_second",
    "gigabits_per_second",
    "bytes_",
    "kilobytes",
    "kibibytes",
    "megabytes",
    "mebibytes",
    "gigabytes",
    "transmission_delay",
    "bandwidth_delay_product_packets",
]
