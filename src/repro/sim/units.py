"""Unit helpers.

The simulator's base units are **seconds**, **bits per second** and
**bytes**.  The paper mixes Gbps links, microsecond delays and packet-count
queues; these helpers keep experiment configs readable and conversion bugs
out of the model code.

Two machine-readable declarations back the cross-module semantic
analyzer (``repro.lint.sem``, see LINTING.md):

* :data:`CONSTRUCTOR_DIMENSIONS` maps every conversion here to the
  dimension of its return value, seeding the analyzer's unit-dataflow
  facts (``milliseconds(5)`` *is* seconds, wherever it flows);
* the :data:`Seconds` / :data:`BitsPerSecond` / :data:`Bytes` /
  :data:`Packets` aliases annotate unit-typed parameters ("sinks") in
  model constructors — plain ``float``/``int`` at runtime, but the
  analyzer reads them as dimension declarations and checks every value
  that crosses into such a parameter.
"""

from __future__ import annotations

from typing import Dict

# ---------------------------------------------------------------------------
# Dimension names and annotation aliases
# ---------------------------------------------------------------------------

#: Canonical dimension identifiers used by the semantic analyzer.
DIM_SECONDS = "seconds"
DIM_BITS_PER_SECOND = "bits_per_second"
DIM_BYTES = "bytes"
DIM_PACKETS = "packets"

#: Annotation aliases for unit-typed ("sink") parameters.  Inert at
#: runtime; ``repro.lint.sem`` treats an annotated parameter as a
#: declared unit sink (see ANNOTATION_DIMENSIONS).
Seconds = float
BitsPerSecond = float
Bytes = int
Packets = float

#: Annotation name -> dimension, for the semantic analyzer.
ANNOTATION_DIMENSIONS: Dict[str, str] = {
    "Seconds": DIM_SECONDS,
    "BitsPerSecond": DIM_BITS_PER_SECOND,
    "Bytes": DIM_BYTES,
    "Packets": DIM_PACKETS,
}

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

def seconds(value: float) -> float:
    """Identity; marks a literal as seconds at call sites."""
    return float(value)


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


def microseconds(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def nanoseconds(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * 1e-9


# ---------------------------------------------------------------------------
# Rates
# ---------------------------------------------------------------------------

def bits_per_second(value: float) -> float:
    """Identity; marks a literal as bits/second at call sites."""
    return float(value)


def kilobits_per_second(value: float) -> float:
    """Convert kbit/s to bit/s."""
    return value * 1e3


def megabits_per_second(value: float) -> float:
    """Convert Mbit/s to bit/s."""
    return value * 1e6


def gigabits_per_second(value: float) -> float:
    """Convert Gbit/s to bit/s."""
    return value * 1e9


# ---------------------------------------------------------------------------
# Sizes
# ---------------------------------------------------------------------------

def bytes_(value: float) -> int:
    """Identity (rounded); marks a literal as bytes at call sites."""
    return int(value)


def kilobytes(value: float) -> int:
    """Convert KB (10^3) to bytes."""
    return int(value * 1e3)


def kibibytes(value: float) -> int:
    """Convert KiB (2^10) to bytes."""
    return int(value * 1024)


def megabytes(value: float) -> int:
    """Convert MB (10^6) to bytes."""
    return int(value * 1e6)


def mebibytes(value: float) -> int:
    """Convert MiB (2^20) to bytes."""
    return int(value * 1024 * 1024)


def gigabytes(value: float) -> int:
    """Convert GB (10^9) to bytes."""
    return int(value * 1e9)


# ---------------------------------------------------------------------------
# Derived quantities
# ---------------------------------------------------------------------------

def transmission_delay(size_bytes: int, rate_bps: float) -> float:
    """Serialization time of ``size_bytes`` on a ``rate_bps`` link, seconds."""
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    return size_bytes * 8.0 / rate_bps


def bandwidth_delay_product_packets(
    rate_bps: float, rtt_s: float, packet_bytes: int = 1500
) -> float:
    """BDP expressed in packets, as used throughout the paper (e.g. Eq. 1).

    The paper computes e.g. ``1 Gbps x 225 us / (8 x 1500) ~= 19 packets``.
    """
    if packet_bytes <= 0:
        raise ValueError(f"packet size must be positive, got {packet_bytes}")
    return rate_bps * rtt_s / (8.0 * packet_bytes)


#: Constructor name -> dimension of its return value.  This is the
#: machine-readable seed for unit-dataflow analysis: every entry here is
#: a fact of the form "a call to <name>(...) produces a value of
#: <dimension>", regardless of which module the call appears in.
CONSTRUCTOR_DIMENSIONS: Dict[str, str] = {
    "seconds": DIM_SECONDS,
    "milliseconds": DIM_SECONDS,
    "microseconds": DIM_SECONDS,
    "nanoseconds": DIM_SECONDS,
    "bits_per_second": DIM_BITS_PER_SECOND,
    "kilobits_per_second": DIM_BITS_PER_SECOND,
    "megabits_per_second": DIM_BITS_PER_SECOND,
    "gigabits_per_second": DIM_BITS_PER_SECOND,
    "bytes_": DIM_BYTES,
    "kilobytes": DIM_BYTES,
    "kibibytes": DIM_BYTES,
    "megabytes": DIM_BYTES,
    "mebibytes": DIM_BYTES,
    "gigabytes": DIM_BYTES,
    "transmission_delay": DIM_SECONDS,
    "bandwidth_delay_product_packets": DIM_PACKETS,
}

#: Identity constructor per dimension: wraps a value without changing it,
#: naming its unit at the call site.  Used by ``simlint --fix`` when no
#: named conversion reproduces a literal bit-for-bit.
IDENTITY_CONSTRUCTORS: Dict[str, str] = {
    DIM_SECONDS: "seconds",
    DIM_BITS_PER_SECOND: "bits_per_second",
    DIM_BYTES: "bytes_",
}

#: Scale factor of each *multiplicative* conversion (constructor(x) ==
#: x * factor, up to float rounding).  ``simlint --fix`` consults this to
#: propose ``gigabits_per_second(1)`` for ``1e9`` — and then verifies the
#: rewrite is bit-identical before attaching it, because e.g.
#: ``microseconds(20)`` is NOT the same float as ``20e-6``.
CONVERSION_FACTORS: Dict[str, float] = {
    "seconds": 1.0,
    "milliseconds": 1e-3,
    "microseconds": 1e-6,
    "nanoseconds": 1e-9,
    "bits_per_second": 1.0,
    "kilobits_per_second": 1e3,
    "megabits_per_second": 1e6,
    "gigabits_per_second": 1e9,
    "bytes_": 1.0,
    "kilobytes": 1e3,
    "kibibytes": 1024.0,
    "megabytes": 1e6,
    "mebibytes": 1024.0 * 1024.0,
    "gigabytes": 1e9,
}


__all__ = [
    "ANNOTATION_DIMENSIONS",
    "BitsPerSecond",
    "Bytes",
    "CONSTRUCTOR_DIMENSIONS",
    "CONVERSION_FACTORS",
    "DIM_BITS_PER_SECOND",
    "DIM_BYTES",
    "DIM_PACKETS",
    "DIM_SECONDS",
    "IDENTITY_CONSTRUCTORS",
    "Packets",
    "Seconds",
    "seconds",
    "milliseconds",
    "microseconds",
    "nanoseconds",
    "bits_per_second",
    "kilobits_per_second",
    "megabits_per_second",
    "gigabits_per_second",
    "bytes_",
    "kilobytes",
    "kibibytes",
    "megabytes",
    "mebibytes",
    "gigabytes",
    "transmission_delay",
    "bandwidth_delay_product_packets",
]
