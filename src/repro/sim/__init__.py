"""Discrete-event simulation engine.

This package provides the event-driven substrate that everything else in
:mod:`repro` runs on: a binary-heap scheduler (:class:`~repro.sim.engine.Simulator`),
cancellable timers (:class:`~repro.sim.events.Event`), unit-conversion helpers
(:mod:`repro.sim.units`) and reproducible per-component random streams
(:mod:`repro.sim.random`).
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.random import RandomStreams
from repro.sim import units

__all__ = ["Simulator", "Event", "RandomStreams", "units"]
