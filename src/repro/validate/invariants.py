"""Runtime invariant checkers for the simulator's mechanism laws.

The reproduction's claims rest on precise mechanism behaviour: the
marking rule (paper §2.1), the once-per-round BOS reduction machine
(Fig. 2 / Algorithm 1), TraSh's per-round δ (Eq. 9), and plain
conservation laws every discrete-event network model must obey.  A
:class:`Validator` attaches lightweight observers to simulators, queues,
links and senders as they are constructed (see
:mod:`repro.validate.hooks`) and checks:

* **sim-time monotonicity** — the event clock never moves backwards and
  the fired-event count matches what the observer saw;
* **packet conservation per queue** — ``enqueued == dequeued + resident``
  and the observer's own enqueue/dequeue counts match the queue's
  counters (catching corrupted counters, not just wrong totals);
* **queue admission** — occupancy never exceeds capacity;
* **CE-marking consistency** — an ECT packet admitted over threshold
  ``K`` must carry CE (§2.1's instantaneous rule), and CE never appears
  on a non-ECT packet (RFC 3168: non-ECT is dropped, never marked);
* **link byte conservation** — transmitted counters match observed
  per-packet sizes, and a link never transmits more than was offered;
* **sender sanity** — ``snd_una <= snd_nxt <= assigned``, ``snd_una``
  monotone, ``cwnd`` finite and >= 1, and ``cwnd`` only changes through
  the congestion-control hooks (tampering between ACKs is detected);
* **BOS law conformance** — at most one multiplicative cut per RTT
  window (Fig. 2), cut depth exactly ``cwnd/β`` bounded below by
  ``MIN_CWND`` (Eq. 1), per-round additive growth at most ``δ`` plus the
  fractional adder's carry (Algorithm 1), and under TraSh coupling
  ``δ <= w · srtt/min_rtt`` (a bound implied by Eq. 9, since the
  subflow's own rate contributes to the coupled total);
* **end-to-end byte conservation per flow** — the connection's delivered
  count equals the sum of subflow ACK points, the receiver is never
  behind the sender's ACK point, and a completed finite transfer
  delivered exactly its size.

Observers are attached per object.  Queues and links are watched by
swapping the instance's ``__class__`` for a generated subclass whose
``accept``/``pop``/``_finish_transmission`` notify the observer around
the base implementation — the base classes' hot paths carry no check at
all, so an un-validated run pays exactly nothing on the per-packet path.
The simulator loop and the TCP ACK path keep a single aliased
``observer is None`` branch instead (their methods are long-lived loops
that cannot be swapped mid-run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.transport.cc import MIN_CWND

#: Slack for float comparisons in window-law checks.
EPS = 1e-9


class InvariantError(AssertionError):
    """Raised when one or more runtime invariants were violated."""


@dataclass(frozen=True)
class Violation:
    """One invariant failure: which law, on what object, and why."""

    invariant: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.subject}: {self.message}"


# ----------------------------------------------------------------------
# Observers (one per watched object; hot-path callbacks live here)
# ----------------------------------------------------------------------


# ----------------------------------------------------------------------
# Observed subclasses for per-packet hot paths
# ----------------------------------------------------------------------
#
# Watching a queue or link swaps the instance's ``__class__`` for a
# generated subclass (``__slots__ = ()`` keeps the layout identical, so
# the assignment is legal) whose hot methods wrap the originals.  The
# wrappers resolve the base method through the original class at call
# time, so ``monkeypatch.setattr(ThresholdECNQueue, "_mark", ...)``-style
# sabotage in negative tests still reaches the real implementation.

_OBSERVED_QUEUE: dict = {}
_OBSERVED_LINK: dict = {}


def _observed_queue_class(cls: type) -> type:
    if getattr(cls, "_repro_observed", False):
        return cls
    observed = _OBSERVED_QUEUE.get(cls)
    if observed is not None:
        return observed

    def accept(self: Any, packet: Any) -> bool:
        occupancy_before = len(self._buffer)
        accepted = cls.accept(self, packet)
        observer = self.observer
        if observer is not None:
            if accepted:
                observer.on_enqueue(self, packet, occupancy_before)
            else:
                observer.on_drop(self, packet)
        return accepted

    def pop(self: Any) -> Any:
        packet = cls.pop(self)
        if packet is not None and self.observer is not None:
            self.observer.on_dequeue(self, packet)
        return packet

    observed = type(
        "Observed" + cls.__name__,
        (cls,),
        {
            "__slots__": (),
            "_repro_observed": True,
            "accept": accept,
            "pop": pop,
        },
    )
    _OBSERVED_QUEUE[cls] = observed
    return observed


def _observed_link_class(cls: type) -> type:
    if getattr(cls, "_repro_observed", False):
        return cls
    observed = _OBSERVED_LINK.get(cls)
    if observed is not None:
        return observed

    def _finish_transmission(self: Any, packet: Any) -> None:
        # Capture up/down before the base method: it may start the next
        # transmission, but it cannot flip ``up`` (that takes an external
        # set_down call, which runs as its own event).
        was_up = self.up
        cls._finish_transmission(self, packet)
        if was_up and self.observer is not None:
            self.observer.on_transmit(self, packet)

    observed = type(
        "Observed" + cls.__name__,
        (cls,),
        {
            "__slots__": (),
            "_repro_observed": True,
            "_finish_transmission": _finish_transmission,
        },
    )
    _OBSERVED_LINK[cls] = observed
    return observed


class SimObserver:
    """Watches one simulator: monotonic clock, consistent event counter."""

    __slots__ = ("validator", "sim", "last_time", "events_seen", "base_events")

    def __init__(self, validator: "Validator", sim: Any) -> None:
        self.validator = validator
        self.sim = sim
        self.last_time = sim.now
        self.events_seen = 0
        self.base_events = sim.events_processed

    def on_event(self, time: float) -> None:
        v = self.validator
        v.checks += 2
        if time < self.last_time:
            v.record(
                "sim-time-monotonic",
                "simulator",
                f"clock moved backwards: {self.last_time!r} -> {time!r}",
            )
        if not (time >= 0.0):  # also catches NaN
            v.record("sim-time-monotonic", "simulator", f"non-finite or negative event time {time!r}")
        self.last_time = time
        self.events_seen += 1

    def finish(self) -> None:
        v = self.validator
        v.checks += 1
        fired = self.sim.events_processed - self.base_events
        if fired != self.events_seen:
            v.record(
                "sim-event-counter",
                "simulator",
                f"events_processed advanced by {fired} but the observer saw "
                f"{self.events_seen} events — counter corrupted or an event "
                "bypassed the loop",
            )


class QueueObserver:
    """Watches one queue: admission, marking rule, packet conservation."""

    __slots__ = ("validator", "queue", "label", "enq_seen", "deq_seen",
                 "drop_seen", "base")

    def __init__(self, validator: "Validator", queue: Any, label: str) -> None:
        self.validator = validator
        self.queue = queue
        self.label = label
        self.enq_seen = 0
        self.deq_seen = 0
        self.drop_seen = 0
        self.base = queue.stats.snapshot()

    def on_enqueue(self, queue: Any, packet: Any, occupancy_before: int) -> None:
        v = self.validator
        v.checks += 3
        self.enq_seen += 1
        if occupancy_before + 1 > queue.capacity:
            v.record(
                "queue-admission",
                self.label,
                f"over-admitted past capacity: occupancy {occupancy_before + 1} "
                f"> capacity {queue.capacity}",
            )
        if packet.ce and not packet.ect:
            v.record(
                "ce-marking",
                self.label,
                f"CE set on a non-ECT packet ({packet!r}); queues may only "
                "mark ECT traffic (RFC 3168)",
            )
        threshold = getattr(queue, "threshold", None)
        if (
            threshold is not None
            and packet.ect
            and occupancy_before >= threshold
            and not packet.ce
        ):
            v.record(
                "ce-marking",
                self.label,
                f"ECT packet admitted at occupancy {occupancy_before} >= "
                f"K={threshold} without a CE mark (paper §2.1 marking rule)",
            )

    def on_drop(self, queue: Any, packet: Any) -> None:
        v = self.validator
        v.checks += 1
        self.drop_seen += 1
        if len(queue) < queue.capacity:
            v.record(
                "queue-admission",
                self.label,
                f"dropped {packet!r} while occupancy {len(queue)} < "
                f"capacity {queue.capacity}",
            )

    def on_dequeue(self, queue: Any, packet: Any) -> None:
        self.validator.checks += 1
        self.deq_seen += 1

    def finish(self) -> None:
        v = self.validator
        queue, base = self.queue, self.base
        stats = queue.stats
        v.checks += 6
        enq = stats.enqueued - base["enqueued"]
        deq = stats.dequeued - base["dequeued"]
        if enq != self.enq_seen:
            v.record(
                "queue-conservation",
                self.label,
                f"enqueued counter advanced by {enq} but the observer saw "
                f"{self.enq_seen} enqueues — counter corrupted",
            )
        if deq != self.deq_seen:
            v.record(
                "queue-conservation",
                self.label,
                f"dequeued counter advanced by {deq} but the observer saw "
                f"{self.deq_seen} dequeues — counter corrupted",
            )
        resident = len(queue)
        if stats.enqueued != stats.dequeued + resident:
            v.record(
                "queue-conservation",
                self.label,
                f"packet conservation broken: enqueued={stats.enqueued} != "
                f"dequeued={stats.dequeued} + resident={resident}",
            )
        if stats.dropped - base["dropped"] < self.drop_seen:
            v.record(
                "queue-conservation",
                self.label,
                f"dropped counter ({stats.dropped - base['dropped']}) fell "
                f"behind observed drops ({self.drop_seen})",
            )
        if stats.marked > stats.enqueued:
            v.record(
                "ce-marking",
                self.label,
                f"marked={stats.marked} exceeds enqueued={stats.enqueued}",
            )
        if stats.max_occupancy > queue.capacity or resident > queue.capacity:
            v.record(
                "queue-admission",
                self.label,
                f"occupancy exceeded capacity {queue.capacity} "
                f"(max_occupancy={stats.max_occupancy}, resident={resident})",
            )


class LinkObserver:
    """Watches one link direction: byte/packet counter consistency."""

    __slots__ = ("validator", "link", "bytes_seen", "packets_seen",
                 "base_bytes", "base_packets", "base_offered")

    def __init__(self, validator: "Validator", link: Any) -> None:
        self.validator = validator
        self.link = link
        self.bytes_seen = 0
        self.packets_seen = 0
        self.base_bytes = link.bytes_transmitted
        self.base_packets = link.packets_transmitted
        self.base_offered = link.bytes_offered

    def on_transmit(self, link: Any, packet: Any) -> None:
        self.validator.checks += 1
        self.bytes_seen += packet.size
        self.packets_seen += 1

    def finish(self) -> None:
        v = self.validator
        link = self.link
        v.checks += 3
        tx_bytes = link.bytes_transmitted - self.base_bytes
        tx_packets = link.packets_transmitted - self.base_packets
        if tx_bytes != self.bytes_seen or tx_packets != self.packets_seen:
            v.record(
                "link-conservation",
                link.name,
                f"transmit counters ({tx_packets} pkts / {tx_bytes} B) do not "
                f"match observed transmissions ({self.packets_seen} pkts / "
                f"{self.bytes_seen} B)",
            )
        if link.bytes_transmitted > link.bytes_offered:
            v.record(
                "link-conservation",
                link.name,
                f"transmitted {link.bytes_transmitted} B exceeds offered "
                f"{link.bytes_offered} B",
            )


class SenderObserver:
    """Watches one TCP sender: sequence sanity and cwnd provenance."""

    __slots__ = ("validator", "sender", "label", "expected_cwnd", "last_una")

    def __init__(self, validator: "Validator", sender: Any) -> None:
        self.validator = validator
        self.sender = sender
        self.label = f"flow {sender.flow}.{sender.subflow}"
        #: cwnd at the end of the previous ACK; ``None`` = unsynchronized
        #: (before the first ACK or right after an RTO).
        self.expected_cwnd: Optional[float] = None
        self.last_una = sender.snd_una

    def on_ack(
        self,
        sender: Any,
        newly: int,
        ece_count: int,
        round_ended: bool,
        cwnd_before: float,
    ) -> None:
        v = self.validator
        v.checks += 4
        if self.expected_cwnd is not None and cwnd_before != self.expected_cwnd:
            v.record(
                "cwnd-provenance",
                self.label,
                f"cwnd changed outside the congestion-control hooks: was "
                f"{self.expected_cwnd:.6f} after the previous ACK, found "
                f"{cwnd_before:.6f} — something mutated sender.cwnd directly",
            )
        if sender.snd_una < self.last_una:
            v.record(
                "sender-sequence",
                self.label,
                f"snd_una moved backwards: {self.last_una} -> {sender.snd_una}",
            )
        if not (sender.snd_una <= sender.snd_nxt <= sender.assigned):
            v.record(
                "sender-sequence",
                self.label,
                f"sequence ordering broken: snd_una={sender.snd_una}, "
                f"snd_nxt={sender.snd_nxt}, assigned={sender.assigned}",
            )
        cwnd = sender.cwnd
        if not (1.0 - EPS <= cwnd < float("inf")):
            v.record(
                "cwnd-bounds",
                self.label,
                f"cwnd left its sane range: {cwnd!r} (must be finite and >= 1)",
            )
        self.expected_cwnd = cwnd
        self.last_una = sender.snd_una

    def on_rto(self, sender: Any) -> None:
        # The RTO path collapses cwnd through cc.on_timeout; re-sync.
        self.validator.checks += 1
        self.expected_cwnd = sender.cwnd
        self.last_una = sender.snd_una

    def finish(self) -> None:
        v = self.validator
        sender = self.sender
        v.checks += 2
        if not (0 <= sender.snd_una <= sender.snd_nxt <= sender.assigned):
            v.record(
                "sender-sequence",
                self.label,
                f"final sequence state inconsistent: snd_una={sender.snd_una}, "
                f"snd_nxt={sender.snd_nxt}, assigned={sender.assigned}",
            )
        total_tx = sender.segments_sent + sender.retransmissions
        if sender.snd_una > total_tx:
            v.record(
                "sender-sequence",
                self.label,
                f"{sender.snd_una} segments acknowledged but only {total_tx} "
                "transmissions recorded",
            )


class BosObserver:
    """Watches one BOS controller: the paper's window laws (Alg. 1, Eq. 9)."""

    __slots__ = ("validator", "cc", "label", "last_cut_seq", "cuts_seen")

    def __init__(self, validator: "Validator", cc: Any, label: str) -> None:
        self.validator = validator
        self.cc = cc
        self.label = label
        self.last_cut_seq: Optional[int] = None
        self.cuts_seen = 0

    def on_reduce(self, cc: Any, cwnd_before: float, cwnd_after: float) -> None:
        v = self.validator
        v.checks += 3
        sender = cc.sender
        self.cuts_seen += 1
        if self.last_cut_seq is not None and sender.snd_una < self.last_cut_seq:
            v.record(
                "bos-once-per-round",
                self.label,
                f"second multiplicative cut before the previous reduction "
                f"round was ACKed (snd_una={sender.snd_una} < "
                f"cwr_seq={self.last_cut_seq}); Fig. 2 allows at most one "
                "cut per RTT",
            )
        # The MIN_CWND clamp may legitimately *raise* a window that
        # recovery deflated below 2 segments; beyond that, a cut must
        # never grow the window.
        if cwnd_after > max(cwnd_before, MIN_CWND) + EPS:
            v.record(
                "bos-cut-depth",
                self.label,
                f"reduction grew cwnd: {cwnd_before:.6f} -> {cwnd_after:.6f}",
            )
        floor = max(cwnd_before - max(cwnd_before / cc.beta, 1.0), 0.0)
        floor = min(floor, cwnd_before)
        lower = max(min(cwnd_before, MIN_CWND), floor) - EPS
        if cwnd_after < lower:
            v.record(
                "bos-cut-depth",
                self.label,
                f"cut deeper than cwnd/beta: {cwnd_before:.6f} -> "
                f"{cwnd_after:.6f} with beta={cc.beta} (Eq. 1 cut is "
                "cwnd/beta, floored at MIN_CWND)",
            )
        self.last_cut_seq = cc.cwr_seq

    def on_round(self, cc: Any, delta: float, grown: int) -> None:
        v = self.validator
        v.checks += 3
        if not (delta > 0.0):
            v.record(
                "trash-delta-bounds",
                self.label,
                f"non-positive growth parameter delta={delta!r} (Eq. 9 "
                "yields strictly positive deltas)",
            )
        if grown > delta + 1.0 + EPS:
            v.record(
                "bos-additive-growth",
                self.label,
                f"grew cwnd by {grown} segments in one round with "
                f"delta={delta:.6f}; Algorithm 1 allows at most "
                "floor(adder + delta) <= delta + 1 per round",
            )
        if not (0.0 - EPS <= cc.adder < 1.0 + EPS):
            v.record(
                "bos-additive-growth",
                self.label,
                f"fractional adder left [0, 1): {cc.adder!r}",
            )
        coupling = getattr(cc.delta_provider, "__self__", None)
        if coupling is not None and hasattr(coupling, "min_rtt"):
            sender = cc.sender
            srtt = sender.srtt if sender is not None else None
            min_rtt = coupling.min_rtt()
            weight = getattr(coupling, "weight", 1.0)
            if srtt is not None and min_rtt is not None and min_rtt > 0:
                v.checks += 1
                bound = weight * srtt / min_rtt
                if delta > bound * (1.0 + 1e-6) + EPS:
                    v.record(
                        "trash-delta-bounds",
                        self.label,
                        f"delta={delta:.6f} exceeds the Eq. 9 bound "
                        f"w*srtt/min_rtt={bound:.6f} (weight={weight}, "
                        f"srtt={srtt:.6g}, min_rtt={min_rtt:.6g})",
                    )

    def finish(self) -> None:
        v = self.validator
        v.checks += 1
        if self.cc.reductions != self.cuts_seen:
            v.record(
                "bos-once-per-round",
                self.label,
                f"controller counted {self.cc.reductions} reductions but the "
                f"observer saw {self.cuts_seen}",
            )


# ----------------------------------------------------------------------
# The validator
# ----------------------------------------------------------------------


class Validator:
    """Collects observers and violations for one validated run.

    Attach it through :func:`repro.validate.hooks.validating` (or
    ``activate``/``deactivate``); constructors in the instrumented
    modules register new simulators, queues, links, senders and
    connections automatically.  Call :meth:`finish` after the simulation
    to run the post-hoc conservation sweeps, then
    :meth:`raise_if_violations` (or inspect :attr:`violations`).
    """

    def __init__(self, fail_fast: bool = False) -> None:
        self.fail_fast = fail_fast
        self.violations: List[Violation] = []
        #: Number of individual invariant evaluations performed.
        self.checks = 0
        self.finished = False
        self._sim_observers: List[SimObserver] = []
        self._queue_observers: List[QueueObserver] = []
        self._link_observers: List[LinkObserver] = []
        self._sender_observers: List[SenderObserver] = []
        self._bos_observers: List[BosObserver] = []
        self._connections: List[Any] = []

    # -- registration ---------------------------------------------------

    def watch_sim(self, sim: Any) -> None:
        """Instrument a simulator (idempotent per object)."""
        if sim.observer is not None:
            return
        observer = SimObserver(self, sim)
        sim.observer = observer
        self._sim_observers.append(observer)

    def watch_queue(self, queue: Any, label: str = "queue") -> None:
        """Instrument a queue (idempotent per object)."""
        if queue.observer is not None:
            return
        queue.__class__ = _observed_queue_class(queue.__class__)
        observer = QueueObserver(self, queue, label)
        queue.observer = observer
        self._queue_observers.append(observer)

    def watch_link(self, link: Any) -> None:
        """Instrument a link and its queue (idempotent per object)."""
        if link.observer is None:
            link.__class__ = _observed_link_class(link.__class__)
            # The class swap changes where the link's pre-bound transmit
            # callbacks must resolve; refresh them (see Link._rebind).
            link._rebind()
            observer = LinkObserver(self, link)
            link.observer = observer
            self._link_observers.append(observer)
        self.watch_queue(link.queue, label=f"queue[{link.name}]")

    def watch_sender(self, sender: Any) -> None:
        """Instrument a TCP sender; BOS controllers get law checks too."""
        if sender.observer is not None:
            return
        observer = SenderObserver(self, sender)
        sender.observer = observer
        self._sender_observers.append(observer)
        cc = sender.cc
        # Duck-typed BOS detection keeps this module import-light.
        if (
            getattr(cc, "observer", "missing") is None
            and hasattr(cc, "beta")
            and hasattr(cc, "adder")
        ):
            bos = BosObserver(self, cc, observer.label)
            cc.observer = bos
            self._bos_observers.append(bos)

    def watch_connection(self, connection: Any) -> None:
        """Register a transfer for end-to-end conservation checks."""
        self._connections.append(connection)

    @property
    def watched_objects(self) -> int:
        return (
            len(self._sim_observers)
            + len(self._queue_observers)
            + len(self._link_observers)
            + len(self._sender_observers)
            + len(self._bos_observers)
            + len(self._connections)
        )

    # -- recording ------------------------------------------------------

    def record(self, invariant: str, subject: str, message: str) -> None:
        """Record one violation (and raise immediately when fail-fast)."""
        violation = Violation(invariant, subject, message)
        self.violations.append(violation)
        if self.fail_fast:
            raise InvariantError(str(violation))

    # -- post-run -------------------------------------------------------

    def finish(self) -> None:
        """Run the post-hoc sweeps (conservation, counter consistency)."""
        if self.finished:
            return
        self.finished = True
        for group in (
            self._sim_observers,
            self._queue_observers,
            self._link_observers,
            self._sender_observers,
            self._bos_observers,
        ):
            for observer in group:
                observer.finish()
        for connection in self._connections:
            self._finish_connection(connection)

    def _finish_connection(self, conn: Any) -> None:
        label = f"connection {conn.flow_id} ({conn.scheme})"
        self.checks += 3 + 2 * len(conn.subflows)
        acked = sum(s.sender.snd_una for s in conn.subflows)
        if conn.delivered_segments != acked:
            self.record(
                "flow-conservation",
                label,
                f"delivered_segments={conn.delivered_segments} != sum of "
                f"subflow ACK points {acked}",
            )
        for subflow in conn.subflows:
            sender, receiver = subflow.sender, subflow.receiver
            if receiver.rcv_nxt < sender.snd_una:
                self.record(
                    "flow-conservation",
                    label,
                    f"subflow {subflow.index}: receiver rcv_nxt="
                    f"{receiver.rcv_nxt} behind sender snd_una={sender.snd_una}",
                )
            total_tx = sender.segments_sent + sender.retransmissions
            if receiver.rcv_nxt > total_tx:
                self.record(
                    "flow-conservation",
                    label,
                    f"subflow {subflow.index}: {receiver.rcv_nxt} segments "
                    f"received in order but only {total_tx} transmissions made",
                )
        total = conn.total_segments
        if total is not None and conn.completed:
            reinjected = any(s.failed for s in conn.subflows)
            if conn.delivered_segments < total or (
                not reinjected and conn.delivered_segments != total
            ):
                self.record(
                    "flow-conservation",
                    label,
                    f"completed transfer delivered {conn.delivered_segments} "
                    f"of {total} segments",
                )

    # -- reporting ------------------------------------------------------

    def summary(self) -> str:
        """One line: objects watched, checks performed, violations found."""
        return (
            f"{self.watched_objects} objects watched, "
            f"{self.checks} invariant checks, "
            f"{len(self.violations)} violation"
            f"{'s' if len(self.violations) != 1 else ''}"
        )

    def report(self) -> str:
        """Multi-line report of every violation (empty string when clean)."""
        return "\n".join(str(v) for v in self.violations)

    def raise_if_violations(self, context: str = "") -> None:
        """Raise :class:`InvariantError` listing every violation, if any."""
        if not self.violations:
            return
        where = f" in {context}" if context else ""
        raise InvariantError(
            f"{len(self.violations)} invariant violation"
            f"{'s' if len(self.violations) != 1 else ''}{where}:\n"
            + self.report()
        )


__all__ = [
    "EPS",
    "InvariantError",
    "Violation",
    "Validator",
    "SimObserver",
    "QueueObserver",
    "LinkObserver",
    "SenderObserver",
    "BosObserver",
]
