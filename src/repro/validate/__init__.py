"""``repro.validate`` — runtime invariant checking + golden-trace harness.

Two complementary defenses against silent correctness regressions (which
the PR-1 run cache would otherwise happily spread across every figure):

* :mod:`repro.validate.invariants` — a :class:`Validator` that attaches
  zero-cost-when-disabled observers to simulators, queues, links and
  senders, and checks mechanism laws at runtime (packet conservation,
  queue admission, CE-marking vs K, sim-time monotonicity, the BOS
  once-per-round cut, TraSh δ bounds, per-flow byte conservation);
* :mod:`repro.validate.golden` + :mod:`repro.validate.scenarios` — a
  golden-trace harness that digests canonical small runs and diffs them
  against checked-in goldens, with a ``--bless`` regeneration path.

See ``VALIDATION.md`` for each invariant's paper reference and the
blessing workflow.

This ``__init__`` imports only the dependency-free :mod:`.hooks` module
eagerly; everything else resolves lazily (PEP 562).  That is load-bearing:
the instrumented core modules (``net.network``, ``transport.tcp``,
``mptcp.connection``) import ``repro.validate.hooks`` at module scope,
which executes this ``__init__`` — an eager import of ``invariants`` (or
``golden``/``scenarios``) here would circle back into the still-partial
core packages.
"""

from __future__ import annotations

from repro.validate.hooks import (
    activate,
    active_validator,
    deactivate,
    validating,
    validation_requested,
)

_LAZY = {
    "InvariantError": "repro.validate.invariants",
    "Validator": "repro.validate.invariants",
    "Violation": "repro.validate.invariants",
    "check_digest": "repro.validate.golden",
    "diff_digests": "repro.validate.golden",
    "digest_bottleneck_run": "repro.validate.golden",
    "digest_fattree": "repro.validate.golden",
    "digest_hash": "repro.validate.golden",
    "format_diff": "repro.validate.golden",
    "golden_dir": "repro.validate.golden",
    "load_golden": "repro.validate.golden",
    "save_golden": "repro.validate.golden",
    "run_golden_suite": "repro.validate.scenarios",
    "run_scenario": "repro.validate.scenarios",
    "scenario_names": "repro.validate.scenarios",
    "SCENARIOS": "repro.validate.scenarios",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "activate",
    "active_validator",
    "deactivate",
    "validating",
    "validation_requested",
    *sorted(_LAZY),
]
