"""Canonical small scenarios for the golden-trace harness.

Each scenario is a self-contained, deterministic simulation small enough
to run in well under a second yet broad enough to pin down one slice of
the mechanism stack:

* ``bottleneck-xmp`` — two XMP flows (one 2-subflow, one single-path)
  sharing one ECN bottleneck: exercises BOS (Alg. 1), TraSh coupling
  (Eq. 9) and the XMP echo discipline end to end;
* ``bottleneck-mixed`` — DCTCP, classic-ECN Reno and plain TCP sharing a
  bottleneck: exercises every echo mode and the AQM marking rule under
  scheme coexistence;
* ``fattree-xmp-permutation`` — a short k=4 fat-tree permutation cell:
  multipath routing, many queues, the full experiment pipeline;
* ``fattree-incast`` — the incast workload: small TCP jobs over XMP
  background traffic, RTO-dominated dynamics;
* ``workload-websearch`` — one open-loop websearch cell at load 0.4:
  the empirical size sampler, Poisson arrivals, the flow-lifecycle seam
  and the FCT/queue-depth reducers (``repro.workloads`` end to end);
* ``incast-fanin8`` — one partition-aggregate fan-in-8 cell: request
  fan-out, scheme-under-test responses, JCT and collapse-ratio
  accounting.

Every scenario runs with a fresh :class:`~repro.validate.invariants.Validator`
active, so golden runs double as invariant runs: a scenario whose digest
matches but whose invariants fire still fails.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.validate.golden import (
    digest_bottleneck_run,
    digest_fattree,
    digest_incast_sweep,
    digest_workload,
)
from repro.validate.hooks import validating
from repro.validate.invariants import Validator

ScenarioFn = Callable[..., Dict[str, Any]]


def _bottleneck_xmp(beta: float = 4.0, marking_threshold: int = 10) -> Dict[str, Any]:
    from repro.mptcp.connection import MptcpConnection
    from repro.topology.bottleneck import build_single_bottleneck

    net = build_single_bottleneck(
        num_pairs=2, marking_threshold=marking_threshold
    )
    path0 = net.flow_path(0)
    conns = [
        # Two subflows over the same bottleneck: the coupling must keep the
        # 2-subflow flow from taking two shares (the paper's Fig. 3(b) point).
        MptcpConnection(net, "S0", "D0", [path0, path0], scheme="xmp",
                        size_bytes=600_000, beta=beta),
        MptcpConnection(net, "S1", "D1", [net.flow_path(1)], scheme="xmp",
                        size_bytes=400_000, beta=beta),
    ]
    for conn in conns:
        conn.start()
    net.sim.run(until=0.4)
    return digest_bottleneck_run(net, conns)


def _bottleneck_mixed(marking_threshold: int = 10) -> Dict[str, Any]:
    from repro.mptcp.connection import MptcpConnection
    from repro.topology.bottleneck import build_single_bottleneck

    net = build_single_bottleneck(
        num_pairs=3, marking_threshold=marking_threshold
    )
    conns = [
        MptcpConnection(net, "S0", "D0", [net.flow_path(0)], scheme="dctcp",
                        size_bytes=500_000),
        MptcpConnection(net, "S1", "D1", [net.flow_path(1)], scheme="reno-ecn",
                        size_bytes=400_000),
        MptcpConnection(net, "S2", "D2", [net.flow_path(2)], scheme="tcp",
                        size_bytes=300_000),
    ]
    for conn in conns:
        conn.start()
    net.sim.run(until=0.4)
    return digest_bottleneck_run(net, conns)


def _fattree(pattern: str, beta: float = 4.0, duration: float = 0.02) -> Dict[str, Any]:
    from repro.experiments.fattree_eval import FatTreeScenario, _simulate

    scenario = FatTreeScenario(
        pattern=pattern, duration=duration, k=4, seed=1, beta=beta
    )
    return digest_fattree(_simulate(scenario))


def _workload_websearch(load: float = 0.4, duration: float = 0.02) -> Dict[str, Any]:
    from repro.experiments.workload_matrix import (
        WorkloadScenario,
        _simulate_workload,
    )

    scenario = WorkloadScenario(
        scheme="xmp", subflows=2, workload="websearch", load=load,
        duration=duration, k=4, seed=1,
    )
    return digest_workload(_simulate_workload(scenario))


def _incast_fanin(fan_in: int = 8, duration: float = 0.02) -> Dict[str, Any]:
    from repro.experiments.workload_matrix import (
        IncastSweepScenario,
        _simulate_incast,
    )

    scenario = IncastSweepScenario(
        scheme="xmp", subflows=2, fan_in=fan_in, duration=duration, k=4, seed=1
    )
    return digest_incast_sweep(_simulate_incast(scenario))


#: Name -> zero-argument scenario function.  Ordered; names are the
#: golden file names under ``src/repro/validate/goldens/``.
SCENARIOS: Dict[str, ScenarioFn] = {
    "bottleneck-xmp": _bottleneck_xmp,
    "bottleneck-mixed": _bottleneck_mixed,
    "fattree-xmp-permutation": lambda: _fattree("permutation"),
    "fattree-incast": lambda: _fattree("incast"),
    "workload-websearch": _workload_websearch,
    "incast-fanin8": _incast_fanin,
}

#: Builders tests use to perturb one constant and assert the digest moves.
PERTURBABLE: Dict[str, ScenarioFn] = {
    "bottleneck-xmp": _bottleneck_xmp,
    "fattree-xmp-permutation": lambda **kw: _fattree("permutation", **kw),
    "workload-websearch": _workload_websearch,
    "incast-fanin8": _incast_fanin,
}


def scenario_names() -> List[str]:
    return list(SCENARIOS)


def run_scenario(name: str, **overrides: Any) -> Tuple[Dict[str, Any], Validator]:
    """Run one canonical scenario under a fresh validator.

    Returns the digest and the (finished) validator; the caller decides
    whether violations are fatal.  ``overrides`` perturb scenario
    constants (tests use ``beta=...`` to prove the harness trips).
    """
    if overrides:
        try:
            fn = PERTURBABLE[name]
        except KeyError:
            raise KeyError(f"scenario {name!r} takes no overrides") from None
    else:
        try:
            fn = SCENARIOS[name]
        except KeyError:
            known = ", ".join(SCENARIOS)
            raise KeyError(f"unknown scenario {name!r} (known: {known})") from None
    with validating(raise_on_violation=False) as validator:
        digest = fn(**overrides)
    return digest, validator


def run_golden_suite(
    names: Any = None, bless: bool = False, directory: Any = None
) -> Tuple[str, bool]:
    """Run scenarios, compare (or bless) goldens, enforce invariants.

    Returns a report string and an overall pass flag.  Used by the CLI's
    ``validate`` subcommand and by the invariants test suite.
    """
    from repro.validate.golden import check_digest, format_diff

    lines: List[str] = []
    ok = True
    for name in names if names else scenario_names():
        digest, validator = run_scenario(name)
        status: List[str] = []
        details: List[str] = []
        if validator.violations:
            ok = False
            status.append(f"{len(validator.violations)} invariant violations")
            details.append(validator.report())
        differences = check_digest(name, digest, bless=bless, directory=directory)
        if differences:
            if bless:
                status.append(f"blessed ({len(differences)} fields changed)")
            else:
                ok = False
                status.append("digest mismatch")
                details.append(format_diff(name, differences))
        elif bless:
            status.append("blessed")
        if not status:
            status.append("ok")
        lines.append(f"{name:<28} {', '.join(status)}  [{validator.summary()}]")
        lines.extend(details)
    return "\n".join(lines), ok


__all__ = [
    "SCENARIOS",
    "PERTURBABLE",
    "scenario_names",
    "run_scenario",
    "run_golden_suite",
]
