"""Golden-trace regression harness: canonical digests, diffs, blessing.

A *digest* is a compact, canonical summary of one simulation — event
counts, flow-completion records, aggregate queue statistics — small
enough to check into the repository (JSON under
``src/repro/validate/goldens/``) yet sensitive enough that perturbing a
transport constant (BOS β, marking K, RTOmin …) changes it.  Raw event
logs are deliberately *not* stored: digests diff cleanly and survive
refactors that preserve behaviour.

Workflow:

* ``pytest -m invariants`` (or plain ``pytest``) compares fresh digests
  of the canonical scenarios in :mod:`repro.validate.scenarios` against
  the checked-in goldens and fails with a key-by-key diff on mismatch;
* after an *intentional* behaviour change, regenerate with
  ``PYTHONPATH=src python -m repro validate --bless`` (or
  ``pytest tests/test_validate_golden.py --bless``) and commit the
  updated JSON together with the change that explains it.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Tuple

#: Significant digits kept for floats in digests.  Simulations are
#: bit-deterministic, so this is about readable goldens and stable diffs,
#: not about hiding jitter.
FLOAT_DIGITS = 12


def golden_dir() -> pathlib.Path:
    """Where the checked-in golden digests live."""
    return pathlib.Path(__file__).parent / "goldens"


def canonical(value: Any) -> Any:
    """Normalize a digest value: round floats, sort dict keys, tuples->lists."""
    if isinstance(value, float):
        return float(f"{value:.{FLOAT_DIGITS}g}")
    if isinstance(value, dict):
        return {str(key): canonical(item) for key, item in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    return value


def digest_to_json(digest: Dict[str, Any]) -> str:
    """The canonical serialized form (what goldens store and diffs compare)."""
    return json.dumps(canonical(digest), indent=2, sort_keys=True) + "\n"


def load_golden(
    name: str, directory: Optional[pathlib.Path] = None
) -> Optional[Dict[str, Any]]:
    """The checked-in digest for ``name``, or ``None`` when never blessed."""
    path = (directory or golden_dir()) / f"{name}.json"
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None


def save_golden(
    name: str, digest: Dict[str, Any], directory: Optional[pathlib.Path] = None
) -> pathlib.Path:
    """Write (bless) ``digest`` as the new golden for ``name``."""
    base = directory or golden_dir()
    base.mkdir(parents=True, exist_ok=True)
    path = base / f"{name}.json"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(digest_to_json(digest))
    return path


def diff_digests(
    golden: Any, actual: Any, prefix: str = ""
) -> List[str]:
    """Key-by-key differences between two canonicalized digests.

    Returns human-readable lines like
    ``flows[0].delivered_segments: golden=1370 actual=1295``; an empty
    list means the digests match.
    """
    golden = canonical(golden)
    actual = canonical(actual)
    lines: List[str] = []
    if isinstance(golden, dict) and isinstance(actual, dict):
        for key in sorted(set(golden) | set(actual)):
            where = f"{prefix}.{key}" if prefix else str(key)
            if key not in golden:
                lines.append(f"{where}: missing from golden, actual={actual[key]!r}")
            elif key not in actual:
                lines.append(f"{where}: golden={golden[key]!r}, missing from actual")
            else:
                lines.extend(diff_digests(golden[key], actual[key], where))
        return lines
    if isinstance(golden, list) and isinstance(actual, list):
        if len(golden) != len(actual):
            lines.append(
                f"{prefix}: length golden={len(golden)} actual={len(actual)}"
            )
        for index, (g, a) in enumerate(zip(golden, actual)):
            lines.extend(diff_digests(g, a, f"{prefix}[{index}]"))
        return lines
    if golden != actual:
        lines.append(f"{prefix}: golden={golden!r} actual={actual!r}")
    return lines


def check_digest(
    name: str,
    digest: Dict[str, Any],
    bless: bool = False,
    directory: Optional[pathlib.Path] = None,
) -> List[str]:
    """Compare ``digest`` against the checked-in golden (or bless it).

    Returns the diff lines (empty = match).  With ``bless=True`` the
    digest is written as the new golden and the (pre-bless) diff is still
    returned, so a bless run shows what changed.
    """
    golden = load_golden(name, directory)
    if golden is None:
        differences = [f"{name}: no golden checked in (run with --bless to create it)"]
    else:
        differences = diff_digests(golden, digest)
    if bless:
        save_golden(name, digest, directory)
        return [] if golden is None else differences
    return differences


def format_diff(name: str, differences: List[str]) -> str:
    """A loud, actionable mismatch report for one scenario."""
    header = (
        f"golden-trace mismatch for scenario {name!r} "
        f"({len(differences)} difference{'s' if len(differences) != 1 else ''}).\n"
        "If this change is intentional, regenerate with:\n"
        "  PYTHONPATH=src python -m repro validate --bless\n"
        "and commit the updated golden alongside the change.\n"
    )
    return header + "\n".join(f"  {line}" for line in differences)


# ----------------------------------------------------------------------
# Digest builders
# ----------------------------------------------------------------------


def digest_network_queues(net: Any) -> Dict[str, int]:
    """Aggregate queue statistics over every link of a network."""
    totals = {"enqueued": 0, "dequeued": 0, "dropped": 0, "marked": 0}
    max_occupancy = 0
    for link in net.links:
        stats = link.queue.stats
        totals["enqueued"] += stats.enqueued
        totals["dequeued"] += stats.dequeued
        totals["dropped"] += stats.dropped
        totals["marked"] += stats.marked
        if stats.max_occupancy > max_occupancy:
            max_occupancy = stats.max_occupancy
    totals["max_occupancy"] = max_occupancy
    return totals


def digest_connection(conn: Any) -> Dict[str, Any]:
    """Compact summary of one finished (or stopped) transfer."""
    senders = [s.sender for s in conn.subflows]
    return {
        "flow": conn.flow_id,
        "scheme": conn.scheme,
        "subflows": len(conn.subflows),
        "completed": conn.completed,
        "complete_time": conn.complete_time,
        "delivered_segments": conn.delivered_segments,
        "segments_sent": sum(s.segments_sent for s in senders),
        "retransmissions": sum(s.retransmissions for s in senders),
        "timeouts": sum(s.timeouts for s in senders),
        "rounds": sum(s.rounds for s in senders),
        "bos_reductions": sum(
            getattr(cc, "reductions", 0) for cc in conn.coupling.controllers
        ),
        "goodput_bps": conn.goodput_bps(),
    }


def digest_bottleneck_run(net: Any, connections: List[Any]) -> Dict[str, Any]:
    """Digest for a hand-built small-topology run (bottleneck scenarios)."""
    return {
        "events": net.sim.events_processed,
        "final_time": net.sim.now,
        "queues": digest_network_queues(net),
        "flows": [digest_connection(conn) for conn in connections],
    }


def digest_fattree(result: Any) -> Dict[str, Any]:
    """Digest of a :class:`~repro.experiments.fattree_eval.FatTreeResult`."""
    goodput: Dict[str, Any] = {}
    completed: Dict[str, int] = {}
    unfinished: Dict[str, int] = {}
    for label in sorted(set(result.records) | set(result.unfinished)):
        completed[label] = len(result.records.get(label, []))
        unfinished[label] = len(result.unfinished.get(label, []))
        goodput[label] = result.mean_goodput_bps(label)
    rtt = {
        category: {
            "count": len(samples),
            "mean_s": (sum(samples) / len(samples)) if samples else 0.0,
        }
        for category, samples in result.rtt_samples.items()
    }
    layers: Dict[str, List[float]] = {}
    for _name, layer, util in result.link_utilization:
        layers.setdefault(layer, []).append(util)
    utilization = {
        layer: sum(values) / len(values) for layer, values in layers.items()
    }
    return {
        "events": result.events,
        "duration": result.duration,
        "total_marked": result.total_marked,
        "total_dropped": result.total_dropped,
        "flows_completed": completed,
        "flows_unfinished": unfinished,
        "mean_goodput_bps": goodput,
        "jct": {
            "jobs_started": result.jobs_started,
            "jobs_completed": len(result.jcts),
            "mean_s": (sum(result.jcts) / len(result.jcts)) if result.jcts else 0.0,
        },
        "rtt": rtt,
        "utilization": utilization,
    }


def digest_workload(result: Any) -> Dict[str, Any]:
    """Digest of a :class:`~repro.experiments.workload_matrix.WorkloadResult`.

    Pins the schedule (arrival count, offered bytes), the FCT-by-bin
    table and the per-layer 99p queue depths — the exact numbers the
    workload matrix reports — so a drift in the samplers, the open-loop
    launcher or the reducers trips the golden.
    """
    return {
        "events": result.events,
        "duration": result.duration,
        "scheduled_flows": result.scheduled_flows,
        "launched_flows": result.launched_flows,
        "offered_bytes": result.offered_bytes,
        "flows_completed": len(result.records),
        "flows_unfinished": len(result.unfinished),
        "achieved_load": result.achieved_load(),
        "fct_by_bin": result.fct_table(),
        "queue_p99": {
            layer: result.queue_p99(layer) for layer in sorted(result.queue_samples)
        },
        "total_marked": result.total_marked,
        "total_dropped": result.total_dropped,
    }


def digest_incast_sweep(result: Any) -> Dict[str, Any]:
    """Digest of an :class:`~repro.experiments.workload_matrix.IncastSweepResult`."""
    jcts = result.jcts
    return {
        "events": result.events,
        "duration": result.duration,
        "jobs_started": result.jobs_started,
        "jobs_completed": len(jcts),
        "jct_mean_s": (sum(jcts) / len(jcts)) if jcts else 0.0,
        "collapse_ratio": result.collapse_ratio(),
        "responses_completed": len(result.responses),
        "response_fct": result.response_fct(),
        "queue_p99": {
            layer: result.queue_p99(layer) for layer in sorted(result.queue_samples)
        },
        "total_marked": result.total_marked,
        "total_dropped": result.total_dropped,
    }


def digest_hash(digest: Dict[str, Any]) -> str:
    """A short content hash of a digest (determinism smoke tests)."""
    import hashlib

    return hashlib.sha256(digest_to_json(digest).encode("utf-8")).hexdigest()[:16]


__all__ = [
    "FLOAT_DIGITS",
    "golden_dir",
    "canonical",
    "digest_to_json",
    "load_golden",
    "save_golden",
    "diff_digests",
    "check_digest",
    "format_diff",
    "digest_network_queues",
    "digest_connection",
    "digest_bottleneck_run",
    "digest_fattree",
    "digest_workload",
    "digest_incast_sweep",
    "digest_hash",
]
