"""The active-validator registry: how instrumentation gets switched on.

This module is deliberately dependency-free (it imports nothing from the
rest of :mod:`repro`) so that the lowest layers — :mod:`repro.net`,
:mod:`repro.transport`, :mod:`repro.mptcp` — can consult it at *object
construction time* without creating import cycles.

The contract with the hot paths is:

* when no validator is active, constructors see ``None`` and leave their
  ``observer`` slot unset — every per-event / per-packet hook site is then
  a single ``is None`` branch, which is what keeps validation zero-cost
  when disabled (acceptance bound: <2% on ``benchmarks/test_perf_engine``);
* when a validator is active (via :func:`activate`, the
  :func:`validating` context manager, or ``$REPRO_VALIDATE`` consulted by
  the campaign runner), newly constructed simulators, queues, links and
  senders register themselves with it and receive observers.

Activation nests: :func:`active_validator` returns the innermost
validator, so an experiment executed *inside* a validated test gets its
own fresh validator without disturbing the outer one.
"""

from __future__ import annotations

import contextlib
import os
from typing import TYPE_CHECKING, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle breaker, types only
    from repro.validate.invariants import Validator

_ENV_VALIDATE = "REPRO_VALIDATE"

#: Stack of active validators; the top one receives new objects.
_ACTIVE: List["Validator"] = []


def activate(validator: "Validator") -> None:
    """Push ``validator``: objects constructed from now on register with it."""
    _ACTIVE.append(validator)


def deactivate(validator: Optional["Validator"] = None) -> None:
    """Pop the innermost validator (must match ``validator`` when given)."""
    if not _ACTIVE:
        raise RuntimeError("no validator is active")
    top = _ACTIVE.pop()
    if validator is not None and top is not validator:
        _ACTIVE.append(top)
        raise RuntimeError("deactivate() out of order: not the innermost validator")


def active_validator() -> Optional["Validator"]:
    """The innermost active validator, or ``None`` (the common case)."""
    if _ACTIVE:
        return _ACTIVE[-1]
    return None


def validation_requested() -> bool:
    """Whether runs should self-validate.

    True when a validator is explicitly active in this process *or* the
    ``$REPRO_VALIDATE`` environment variable is set to a non-empty value
    other than ``0`` — the latter is how the CLI's ``--validate`` flag
    reaches campaign worker processes (children inherit the environment).
    """
    if _ACTIVE:
        return True
    return os.environ.get(_ENV_VALIDATE, "") not in ("", "0")


@contextlib.contextmanager
def validating(
    validator: Optional["Validator"] = None,
    finish: bool = True,
    raise_on_violation: bool = True,
) -> Iterator["Validator"]:
    """Run a block with an active validator; finish and (optionally) raise.

    Usage::

        with validating() as v:
            net = build_single_bottleneck(...)
            ...
            net.sim.run(until=0.5)
        # post-run checks ran; InvariantError raised if anything fired

    Pass ``raise_on_violation=False`` to inspect ``v.violations`` yourself
    (the negative tests do), or ``finish=False`` to also skip the post-run
    sweep.
    """
    if validator is None:
        from repro.validate.invariants import Validator

        validator = Validator()
    activate(validator)
    try:
        yield validator
    finally:
        deactivate(validator)
    if finish:
        validator.finish()
    if raise_on_violation:
        validator.raise_if_violations()


__all__ = [
    "activate",
    "deactivate",
    "active_validator",
    "validation_requested",
    "validating",
]
