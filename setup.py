"""Legacy shim for environments whose setuptools predates PEP 660 editable
installs; all real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
